//! Property-based tests for the ML substrate.

use microbrowse_ml::{auc, kfold, stratified_kfold, SparseVec};
use proptest::prelude::*;

fn arb_pairs() -> impl Strategy<Value = Vec<(u32, f64)>> {
    prop::collection::vec((0u32..64, -5.0f64..5.0), 0..40)
}

proptest! {
    /// from_pairs always establishes the sorted/deduped/no-zero invariants.
    #[test]
    fn sparse_invariants(pairs in arb_pairs()) {
        let v = SparseVec::from_pairs(pairs);
        prop_assert!(v.check_invariants());
    }

    /// Building a sparse vector preserves the per-index sum of inputs.
    #[test]
    fn sparse_preserves_sums(pairs in arb_pairs()) {
        let v = SparseVec::from_pairs(pairs.clone());
        let mut sums = std::collections::BTreeMap::<u32, f64>::new();
        for (i, x) in pairs {
            *sums.entry(i).or_insert(0.0) += x;
        }
        for (i, s) in sums {
            prop_assert!((v.get(i) - s).abs() < 1e-9, "index {i}: {} vs {s}", v.get(i));
        }
    }

    /// Dot product is symmetric and matches the dense computation.
    #[test]
    fn sparse_dot_symmetric(a in arb_pairs(), b in arb_pairs()) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        prop_assert!((va.dot(&vb) - vb.dot(&va)).abs() < 1e-9);

        let mut dense = vec![0.0f64; 64];
        for (i, x) in vb.iter() {
            dense[i as usize] = x;
        }
        prop_assert!((va.dot(&vb) - va.dot_dense(&dense)).abs() < 1e-9);
    }

    /// axpy agrees with element-wise arithmetic.
    #[test]
    fn sparse_axpy_elementwise(a in arb_pairs(), b in arb_pairs(), alpha in -3.0f64..3.0) {
        let va = SparseVec::from_pairs(a);
        let vb = SparseVec::from_pairs(b);
        let c = va.axpy(alpha, &vb);
        for i in 0..64u32 {
            let expect = va.get(i) + alpha * vb.get(i);
            prop_assert!((c.get(i) - expect).abs() < 1e-9);
        }
        prop_assert!(c.check_invariants());
    }

    /// Every k-fold split is a partition of 0..n with balanced sizes.
    #[test]
    fn kfold_is_partition(n in 0usize..200, k in 1usize..12, seed in any::<u64>()) {
        let folds = kfold(n, k, seed);
        prop_assert_eq!(folds.len(), k);
        let mut seen = vec![false; n];
        for f in &folds {
            for &i in &f.test_idx {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let sizes: Vec<usize> = folds.iter().map(|f| f.test_idx.len()).collect();
        if !sizes.is_empty() {
            prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
        }
    }

    /// Stratified folds partition and keep per-fold positive counts within 1
    /// of each other.
    #[test]
    fn stratified_is_partition_and_balanced(
        labels in prop::collection::vec(any::<bool>(), 0..150),
        k in 1usize..8,
        seed in any::<u64>(),
    ) {
        let folds = stratified_kfold(&labels, k, seed);
        let mut seen = vec![false; labels.len()];
        for f in &folds {
            for &i in &f.test_idx {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        let pos_counts: Vec<usize> = folds
            .iter()
            .map(|f| f.test_idx.iter().filter(|&&i| labels[i]).count())
            .collect();
        if !pos_counts.is_empty() {
            prop_assert!(pos_counts.iter().max().unwrap() - pos_counts.iter().min().unwrap() <= 1);
        }
    }

    /// AUC is invariant under monotone transformation of scores and flips to
    /// 1-AUC under score negation (with unique scores).
    #[test]
    fn auc_monotone_invariance(
        raw in prop::collection::vec((0.0f64..1.0, any::<bool>()), 2..60),
    ) {
        // Make scores unique to avoid tie-midrank asymmetry in the negation law.
        let scored: Vec<(f64, bool)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(s, l))| (s + i as f64 * 2.0, l))
            .collect();
        let base = auc(&scored);
        let transformed: Vec<(f64, bool)> = scored.iter().map(|&(s, l)| (s.exp(), l)).collect();
        prop_assert!((auc(&transformed) - base).abs() < 1e-9);

        let has_both = scored.iter().any(|&(_, l)| l) && scored.iter().any(|&(_, l)| !l);
        if has_both {
            let negated: Vec<(f64, bool)> = scored.iter().map(|&(s, l)| (-s, l)).collect();
            prop_assert!((auc(&negated) - (1.0 - base)).abs() < 1e-9);
        }
    }
}
