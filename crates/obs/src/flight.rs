//! Always-on in-memory flight recorder with tail sampling.
//!
//! The [`FlightRecorder`] is a [`TraceSink`] that keeps the most recent
//! trace-tagged [`SpanRecord`]s and [`EventRecord`]s in a fixed-size ring.
//! Nothing is written to disk and nothing is retained by default: the ring
//! simply overwrites itself. When a caller decides a request was anomalous
//! — slow, errored, shed, degraded, or explicitly sampled — it *promotes*
//! the request's trace id, which copies every ring record carrying that id
//! into a bounded retained buffer together with a [`TraceSummary`] (status,
//! endpoint, per-stage breakdown). The `/debug/trace` endpoint serves that
//! buffer.
//!
//! This is **tail sampling**: the keep/drop decision happens after the
//! request finishes, when its outcome is known, so anomalies are always
//! captured while the steady state pays only the ring write (one atomic
//! `fetch_add` to claim a slot plus one uncontended per-slot mutex; records
//! without a trace id — e.g. offline pipeline spans — are skipped
//! entirely). `scripts/check.sh` gates the per-record cost via the
//! `flight_overhead` bench binary.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

use crate::trace::{EventRecord, SpanRecord, TraceSink};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One ring slot: a span or an event, both tagged with a trace id.
#[derive(Debug, Clone)]
enum RingRecord {
    Span(SpanRecord),
    Event(EventRecord),
}

impl RingRecord {
    fn trace(&self) -> u128 {
        match self {
            RingRecord::Span(s) => s.trace,
            RingRecord::Event(e) => e.trace,
        }
    }
}

/// Why a trace was promoted into the retained buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PromoteReason {
    /// Total latency exceeded the configured slow threshold.
    Slow,
    /// The response was a non-shed 4xx/5xx.
    Error,
    /// The request was shed (503 overloaded / 504 deadline exceeded).
    Shed,
    /// The response was served from a degraded bundle.
    Degraded,
    /// The caller set the sampling flag (e.g. `X-Mb-Sampled: 1`).
    Sampled,
}

impl PromoteReason {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            PromoteReason::Slow => "slow",
            PromoteReason::Error => "error",
            PromoteReason::Shed => "shed",
            PromoteReason::Degraded => "degraded",
            PromoteReason::Sampled => "sampled",
        }
    }
}

/// Request-level facts attached to a promoted trace: outcome plus the
/// per-stage budget breakdown (queue wait, head+body parse, scoring,
/// response write), all in microseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSummary {
    /// Why the trace was retained.
    pub reason: PromoteReason,
    /// HTTP status of the response.
    pub status: u16,
    /// `METHOD path` of the request (`"-"` when the request was never
    /// parsed, e.g. a connection shed from the accept thread).
    pub endpoint: String,
    /// Total request latency in microseconds.
    pub total_us: u64,
    /// Time spent queued before a worker picked the connection up.
    pub queue_us: u64,
    /// Time spent reading and parsing the request.
    pub parse_us: u64,
    /// Time spent scoring / handling.
    pub score_us: u64,
    /// Time spent writing the response.
    pub write_us: u64,
}

/// One retained anomalous trace: the summary plus every span and event the
/// ring still held for that trace id at promotion time.
#[derive(Debug, Clone)]
pub struct RetainedTrace {
    /// The 128-bit trace id.
    pub trace: u128,
    /// Outcome and stage breakdown.
    pub summary: TraceSummary,
    /// Spans, ordered by start time.
    pub spans: Vec<SpanRecord>,
    /// Events, ordered by emission time.
    pub events: Vec<EventRecord>,
}

/// Sizing knobs for the recorder.
#[derive(Debug, Clone, Copy)]
pub struct FlightConfig {
    /// Ring capacity in records (spans + events).
    pub ring_slots: usize,
    /// Maximum number of retained (promoted) traces; oldest evicted first.
    pub retained_cap: usize,
}

impl Default for FlightConfig {
    fn default() -> Self {
        Self {
            ring_slots: 2048,
            retained_cap: 256,
        }
    }
}

/// The always-on flight recorder. See the module docs for the model.
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<RingRecord>>>,
    cursor: AtomicUsize,
    ring_writes: AtomicU64,
    retained: Mutex<VecDeque<RetainedTrace>>,
    retained_cap: usize,
    evicted: AtomicU64,
}

impl FlightRecorder {
    /// Build a recorder with the given sizing (capacities are clamped to
    /// at least 1).
    pub fn new(cfg: FlightConfig) -> Self {
        let slots = cfg.ring_slots.max(1);
        Self {
            slots: (0..slots).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
            ring_writes: AtomicU64::new(0),
            retained: Mutex::new(VecDeque::new()),
            retained_cap: cfg.retained_cap.max(1),
            evicted: AtomicU64::new(0),
        }
    }

    fn push(&self, record: RingRecord) {
        let idx = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *lock(&self.slots[idx]) = Some(record);
        self.ring_writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Total records written into the ring since startup (overhead gate
    /// instrumentation).
    pub fn ring_writes(&self) -> u64 {
        self.ring_writes.load(Ordering::Relaxed)
    }

    /// Retained traces evicted because the buffer was full.
    pub fn evicted(&self) -> u64 {
        self.evicted.load(Ordering::Relaxed)
    }

    fn retain(&self, trace: RetainedTrace) {
        let mut retained = lock(&self.retained);
        if retained.len() == self.retained_cap {
            retained.pop_front();
            self.evicted.fetch_add(1, Ordering::Relaxed);
        }
        retained.push_back(trace);
        crate::counter!("microbrowse_flight_promoted_total").inc();
    }

    /// Promote `trace` into the retained buffer: scan the ring for every
    /// record carrying the id and store them with `summary`. Called once
    /// per anomalous request, after its response was written.
    pub fn promote(&self, trace: u128, summary: TraceSummary) {
        let mut spans = Vec::new();
        let mut events = Vec::new();
        for slot in &self.slots {
            match lock(slot).as_ref() {
                Some(record) if record.trace() == trace => match record {
                    RingRecord::Span(s) => spans.push(s.clone()),
                    RingRecord::Event(e) => events.push(e.clone()),
                },
                _ => {}
            }
        }
        spans.sort_by_key(|s| s.start_us);
        events.sort_by_key(|e| e.at_us);
        self.retain(RetainedTrace {
            trace,
            summary,
            spans,
            events,
        });
    }

    /// Promote a trace known to have no ring records (e.g. a connection
    /// rejected from the accept thread before any span opened), skipping
    /// the ring scan. `events` may carry synthetic context.
    pub fn promote_direct(&self, trace: u128, summary: TraceSummary, events: Vec<EventRecord>) {
        self.retain(RetainedTrace {
            trace,
            summary,
            spans: Vec::new(),
            events,
        });
    }

    /// The `n` most recently retained traces, newest first.
    pub fn retained(&self, n: usize) -> Vec<RetainedTrace> {
        lock(&self.retained).iter().rev().take(n).cloned().collect()
    }

    /// Number of traces currently retained.
    pub fn retained_len(&self) -> usize {
        lock(&self.retained).len()
    }
}

impl TraceSink for FlightRecorder {
    fn on_span(&self, span: &SpanRecord) {
        if span.trace != 0 {
            self.push(RingRecord::Span(span.clone()));
        }
    }

    fn on_event(&self, event: &EventRecord) {
        if event.trace != 0 {
            self.push(RingRecord::Event(event.clone()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{event, span, TraceContext};
    use std::sync::Arc;

    fn summary(reason: PromoteReason, status: u16) -> TraceSummary {
        TraceSummary {
            reason,
            status,
            endpoint: "POST /v1/score".to_owned(),
            total_us: 10,
            queue_us: 1,
            parse_us: 2,
            score_us: 3,
            write_us: 4,
        }
    }

    #[test]
    fn untraced_records_are_skipped() {
        let rec = FlightRecorder::new(FlightConfig::default());
        rec.on_span(&SpanRecord {
            id: 1,
            parent: 0,
            trace: 0,
            name: "x",
            thread: 1,
            start_us: 0,
            dur_us: 1,
            fields: Vec::new(),
        });
        assert_eq!(rec.ring_writes(), 0);
    }

    #[test]
    fn promotion_collects_trace_records_in_time_order() {
        let _x = crate::trace::tests::exclusive();
        let rec = Arc::new(FlightRecorder::new(FlightConfig::default()));
        crate::trace::install_sink(rec.clone());
        crate::set_enabled(true);
        {
            let _g = TraceContext::from_wire(7, 0, false).enter();
            let _outer = span("serve.request");
            event("serve.tick");
            let _inner = span("engine.score");
        }
        {
            // A different trace the promotion must not pick up.
            let _g = TraceContext::from_wire(8, 0, false).enter();
            let _other = span("serve.request");
        }
        crate::set_enabled(false);
        crate::trace::clear_sink();
        rec.promote(7, summary(PromoteReason::Slow, 200));
        let kept = rec.retained(10);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].trace, 7);
        assert_eq!(kept[0].spans.len(), 2);
        assert_eq!(kept[0].events.len(), 1);
        assert!(kept[0].spans[0].start_us <= kept[0].spans[1].start_us);
        assert!(kept[0].spans.iter().all(|s| s.trace == 7));
        assert_eq!(kept[0].summary.reason, PromoteReason::Slow);
    }

    #[test]
    fn retained_buffer_is_bounded_and_newest_first() {
        let rec = FlightRecorder::new(FlightConfig {
            ring_slots: 8,
            retained_cap: 2,
        });
        for status in [500u16, 501, 502] {
            rec.promote_direct(
                u128::from(status),
                summary(PromoteReason::Error, status),
                Vec::new(),
            );
        }
        assert_eq!(rec.retained_len(), 2);
        assert_eq!(rec.evicted(), 1);
        let kept = rec.retained(10);
        assert_eq!(kept[0].summary.status, 502, "newest first");
        assert_eq!(kept[1].summary.status, 501);
        assert_eq!(rec.retained(1).len(), 1);
    }

    #[test]
    fn ring_overwrites_oldest_records() {
        let _x = crate::trace::tests::exclusive();
        let rec = Arc::new(FlightRecorder::new(FlightConfig {
            ring_slots: 4,
            retained_cap: 4,
        }));
        crate::trace::install_sink(rec.clone());
        crate::set_enabled(true);
        {
            let _g = TraceContext::from_wire(1, 0, false).enter();
            for _ in 0..3 {
                let _s = span("old");
            }
        }
        {
            let _g = TraceContext::from_wire(2, 0, false).enter();
            for _ in 0..4 {
                let _s = span("new");
            }
        }
        crate::set_enabled(false);
        crate::trace::clear_sink();
        rec.promote(1, summary(PromoteReason::Shed, 503));
        let kept = rec.retained(1);
        assert!(kept[0].spans.is_empty(), "trace 1 fully overwritten");
        assert_eq!(rec.ring_writes(), 7);
    }
}
