//! Minimal JSON writing (and a validating reader for tests).
//!
//! The workspace's `serde` compat crate is marker-traits only, so every
//! machine-readable output — the JSONL trace sink, the CLI's `--json`
//! mode, the bench report — is rendered by hand through [`JsonObject`].
//! Output is always a single line (no pretty-printing) so it can double
//! as a JSON-lines record.

use std::fmt::Write as _;

use crate::trace::Value;

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render a finite `f64` as JSON; non-finite values become `null` (JSON
/// has no NaN/Infinity).
pub fn f64_to_json(v: f64) -> String {
    if v.is_finite() {
        let mut s = format!("{v}");
        // `{}` drops the ".0" on whole floats; keep it so the value stays
        // typed as a float on the reader side.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_owned()
    }
}

/// Single-line JSON object builder. Keys are emitted in insertion order
/// and are NOT escaped (call sites use literal identifiers).
#[derive(Default)]
pub struct JsonObject {
    body: String,
}

impl JsonObject {
    /// An empty object.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(&mut self, key: &str) -> &mut String {
        if !self.body.is_empty() {
            self.body.push(',');
        }
        let _ = write!(self.body, "\"{key}\":");
        &mut self.body
    }

    /// Add an unsigned integer member.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        let _ = write!(self.key(key), "{v}");
        self
    }

    /// Add a signed integer member.
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        let _ = write!(self.key(key), "{v}");
        self
    }

    /// Add a float member (`null` when non-finite).
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        let rendered = f64_to_json(v);
        self.key(key).push_str(&rendered);
        self
    }

    /// Add a boolean member.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        self.key(key).push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a string member (escaped).
    pub fn str(mut self, key: &str, v: &str) -> Self {
        let escaped = escape(v);
        let _ = write!(self.key(key), "\"{escaped}\"");
        self
    }

    /// Add a pre-rendered JSON fragment (nested object/array) verbatim.
    pub fn raw(mut self, key: &str, v: &str) -> Self {
        self.key(key).push_str(v);
        self
    }

    /// Add a trace [`Value`] member with its native JSON type.
    pub fn value(self, key: &str, v: &Value) -> Self {
        match v {
            Value::U64(x) => self.u64(key, *x),
            Value::I64(x) => self.i64(key, *x),
            Value::F64(x) => self.f64(key, *x),
            Value::Bool(x) => self.bool(key, *x),
            Value::Str(x) => self.str(key, x),
        }
    }

    /// Close the object and return the rendered JSON.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.body)
    }
}

/// Render a JSON array from pre-rendered element fragments.
pub fn array(elements: &[String]) -> String {
    format!("[{}]", elements.join(","))
}

// --- validating reader ---------------------------------------------------
//
// Tests (here, in the CLI, and in bench) need to check that emitted lines
// are well-formed JSON without an external parser. This is a strict
// recursive-descent validator, not a DOM: it accepts exactly the JSON
// grammar and reports the byte offset of the first violation.

/// Validate that `s` is one complete JSON value. Returns the byte offset
/// of the first syntax error, if any.
pub fn validate(s: &str) -> Result<(), usize> {
    let b = s.as_bytes();
    let mut pos = skip_ws(b, 0);
    pos = value(b, pos)?;
    pos = skip_ws(b, pos);
    if pos == b.len() {
        Ok(())
    } else {
        Err(pos)
    }
}

/// Panic (with context) unless `s` is valid JSON. Test helper.
pub fn assert_parses(s: &str) {
    if let Err(at) = validate(s) {
        panic!("invalid JSON at byte {at}: {s}");
    }
}

fn skip_ws(b: &[u8], mut pos: usize) -> usize {
    while pos < b.len() && matches!(b[pos], b' ' | b'\t' | b'\n' | b'\r') {
        pos += 1;
    }
    pos
}

fn value(b: &[u8], pos: usize) -> Result<usize, usize> {
    match b.get(pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array_value(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(b'-' | b'0'..=b'9') => number(b, pos),
        _ => Err(pos),
    }
}

fn literal(b: &[u8], pos: usize, lit: &[u8]) -> Result<usize, usize> {
    if b[pos..].starts_with(lit) {
        Ok(pos + lit.len())
    } else {
        Err(pos)
    }
}

fn string(b: &[u8], mut pos: usize) -> Result<usize, usize> {
    pos += 1; // opening quote
    while let Some(&c) = b.get(pos) {
        match c {
            b'"' => return Ok(pos + 1),
            b'\\' => {
                pos += 1;
                match b.get(pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => pos += 1,
                    Some(b'u') => {
                        for i in 1..=4 {
                            if !b.get(pos + i).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(pos + i);
                            }
                        }
                        pos += 5;
                    }
                    _ => return Err(pos),
                }
            }
            0x00..=0x1f => return Err(pos),
            _ => pos += 1,
        }
    }
    Err(pos)
}

fn number(b: &[u8], mut pos: usize) -> Result<usize, usize> {
    let start = pos;
    if b.get(pos) == Some(&b'-') {
        pos += 1;
    }
    let digits = |b: &[u8], mut pos: usize| -> Result<usize, usize> {
        let start = pos;
        while pos < b.len() && b[pos].is_ascii_digit() {
            pos += 1;
        }
        if pos == start {
            Err(pos)
        } else {
            Ok(pos)
        }
    };
    // JSON forbids leading zeros: "0" alone, or a nonzero first digit.
    match b.get(pos) {
        Some(b'0') => pos += 1,
        Some(b'1'..=b'9') => pos = digits(b, pos)?,
        _ => return Err(pos),
    }
    if b.get(pos) == Some(&b'.') {
        pos = digits(b, pos + 1)?;
    }
    if matches!(b.get(pos), Some(b'e' | b'E')) {
        pos += 1;
        if matches!(b.get(pos), Some(b'+' | b'-')) {
            pos += 1;
        }
        pos = digits(b, pos)?;
    }
    if pos == start {
        Err(pos)
    } else {
        Ok(pos)
    }
}

fn object(b: &[u8], mut pos: usize) -> Result<usize, usize> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok(pos + 1);
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(pos);
        }
        pos = string(b, pos)?;
        pos = skip_ws(b, pos);
        if b.get(pos) != Some(&b':') {
            return Err(pos);
        }
        pos = value(b, skip_ws(b, pos + 1))?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok(pos + 1),
            _ => return Err(pos),
        }
    }
}

fn array_value(b: &[u8], mut pos: usize) -> Result<usize, usize> {
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok(pos + 1);
    }
    loop {
        pos = value(b, pos)?;
        pos = skip_ws(b, pos);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok(pos + 1),
            _ => return Err(pos),
        }
    }
}

// --- DOM parser ----------------------------------------------------------
//
// The HTTP server needs to *read* request bodies, not just validate them.
// This is the smallest DOM that supports that: parse once, walk with
// `get`/`as_*`. It accepts exactly the same grammar as `validate` (both
// lean on the same scanners) plus a recursion-depth cap, because server
// input is adversarial.

/// Maximum nesting depth [`Json::parse`] accepts. Deeper input is rejected
/// (it would otherwise let a hostile client drive stack growth).
pub const MAX_PARSE_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish int/float).
    Num(f64),
    /// A string, with escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are kept; `get` returns
    /// the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON value. Returns the byte offset of the first
    /// syntax error (or of the depth-limit violation), like [`validate`].
    pub fn parse(s: &str) -> Result<Json, usize> {
        let b = s.as_bytes();
        let mut pos = skip_ws(b, 0);
        let (v, end) = parse_value(b, pos, 0)?;
        pos = skip_ws(b, end);
        if pos == b.len() {
            Ok(v)
        } else {
            Err(pos)
        }
    }

    /// Object member lookup (None for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn parse_value(b: &[u8], pos: usize, depth: usize) -> Result<(Json, usize), usize> {
    if depth > MAX_PARSE_DEPTH {
        return Err(pos);
    }
    match b.get(pos) {
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => {
            let end = string(b, pos)?;
            let s = decode_string(&b[pos + 1..end - 1]).ok_or(pos)?;
            Ok((Json::Str(s), end))
        }
        Some(b't') => literal(b, pos, b"true").map(|end| (Json::Bool(true), end)),
        Some(b'f') => literal(b, pos, b"false").map(|end| (Json::Bool(false), end)),
        Some(b'n') => literal(b, pos, b"null").map(|end| (Json::Null, end)),
        Some(b'-' | b'0'..=b'9') => {
            let end = number(b, pos)?;
            let text = std::str::from_utf8(&b[pos..end]).map_err(|_| pos)?;
            let n: f64 = text.parse().map_err(|_| pos)?;
            Ok((Json::Num(n), end))
        }
        _ => Err(pos),
    }
}

fn parse_object(b: &[u8], mut pos: usize, depth: usize) -> Result<(Json, usize), usize> {
    let mut members = Vec::new();
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b'}') {
        return Ok((Json::Obj(members), pos + 1));
    }
    loop {
        if b.get(pos) != Some(&b'"') {
            return Err(pos);
        }
        let key_end = string(b, pos)?;
        let key = decode_string(&b[pos + 1..key_end - 1]).ok_or(pos)?;
        pos = skip_ws(b, key_end);
        if b.get(pos) != Some(&b':') {
            return Err(pos);
        }
        let (v, end) = parse_value(b, skip_ws(b, pos + 1), depth + 1)?;
        members.push((key, v));
        pos = skip_ws(b, end);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b'}') => return Ok((Json::Obj(members), pos + 1)),
            _ => return Err(pos),
        }
    }
}

fn parse_array(b: &[u8], mut pos: usize, depth: usize) -> Result<(Json, usize), usize> {
    let mut items = Vec::new();
    pos = skip_ws(b, pos + 1);
    if b.get(pos) == Some(&b']') {
        return Ok((Json::Arr(items), pos + 1));
    }
    loop {
        let (v, end) = parse_value(b, pos, depth + 1)?;
        items.push(v);
        pos = skip_ws(b, end);
        match b.get(pos) {
            Some(b',') => pos = skip_ws(b, pos + 1),
            Some(b']') => return Ok((Json::Arr(items), pos + 1)),
            _ => return Err(pos),
        }
    }
}

/// Decode the *inside* of a validated JSON string literal (escapes, incl.
/// `\uXXXX` surrogate pairs). Returns None on invalid UTF-8/surrogates.
fn decode_string(raw: &[u8]) -> Option<String> {
    let s = std::str::from_utf8(raw).ok()?;
    if !s.contains('\\') {
        return Some(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '"' => out.push('"'),
            '\\' => out.push('\\'),
            '/' => out.push('/'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            't' => out.push('\t'),
            'u' => {
                let hi = hex4(&mut chars)?;
                let code = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: a `\uXXXX` low surrogate must follow.
                    if chars.next()? != '\\' || chars.next()? != 'u' {
                        return None;
                    }
                    let lo = hex4(&mut chars)?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return None;
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    hi
                };
                out.push(char::from_u32(code)?);
            }
            _ => return None,
        }
    }
    Some(out)
}

fn hex4(chars: &mut std::str::Chars<'_>) -> Option<u32> {
    let mut v = 0u32;
    for _ in 0..4 {
        v = v * 16 + chars.next()?.to_digit(16)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_renders_all_types() {
        let json = JsonObject::new()
            .u64("u", 7)
            .i64("i", -3)
            .f64("f", 1.5)
            .f64("whole", 2.0)
            .f64("nan", f64::NAN)
            .bool("b", true)
            .str("s", "a\"b\\c\nd")
            .raw("nested", &JsonObject::new().u64("x", 1).finish())
            .raw("arr", &array(&["1".into(), "\"two\"".into()]))
            .finish();
        assert_parses(&json);
        assert!(json.contains("\"u\":7"));
        assert!(json.contains("\"i\":-3"));
        assert!(json.contains("\"whole\":2.0"));
        assert!(json.contains("\"nan\":null"));
        assert!(json.contains("\"s\":\"a\\\"b\\\\c\\nd\""));
        assert!(json.contains("\"nested\":{\"x\":1}"));
        assert!(json.contains("\"arr\":[1,\"two\"]"));
    }

    #[test]
    fn empty_object_is_valid() {
        assert_parses(&JsonObject::new().finish());
    }

    #[test]
    fn validator_accepts_json_and_rejects_junk() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "\"\\u00e9\"",
            "{\"a\":[1,{\"b\":null}],\"c\":false}",
            " { \"k\" : 1 } ",
        ] {
            assert!(validate(good).is_ok(), "{good}");
        }
        for bad in [
            "",
            "{",
            "{\"a\":}",
            "{\"a\":1,}",
            "[1,]",
            "01",
            "1.",
            "\"unterminated",
            "{\"a\":1}x",
            "nul",
            "\"bad\\q\"",
        ] {
            assert!(validate(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn escape_handles_control_chars() {
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn dom_parses_what_builder_writes() {
        let rendered = JsonObject::new()
            .str("r", "line1|line2")
            .f64("score", -1.25)
            .bool("ok", true)
            .raw("arr", &array(&["1".into(), "\"two\"".into()]))
            .raw("nested", &JsonObject::new().u64("x", 3).finish())
            .finish();
        let v = Json::parse(&rendered).expect("round trip");
        assert_eq!(v.get("r").and_then(Json::as_str), Some("line1|line2"));
        assert_eq!(v.get("score").and_then(Json::as_f64), Some(-1.25));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        let arr = v.get("arr").and_then(Json::as_array).unwrap();
        assert_eq!(arr, &[Json::Num(1.0), Json::Str("two".into())]);
        assert_eq!(
            v.get("nested")
                .and_then(|n| n.get("x"))
                .and_then(Json::as_f64),
            Some(3.0)
        );
        assert_eq!(v.get("absent"), None);
    }

    #[test]
    fn dom_decodes_escapes_and_surrogates() {
        let v = Json::parse(r#""a\"b\\c\n\té😀""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\n\té😀"));
        // Lone high surrogate is rejected.
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn dom_rejects_what_validator_rejects() {
        for bad in ["", "{", "{\"a\":1,}", "[1,]", "01", "nul", "{\"a\":1}x"] {
            assert!(Json::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn dom_depth_limit_bounds_recursion() {
        let deep = "[".repeat(10_000) + &"]".repeat(10_000);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(10) + "1" + &"]".repeat(10);
        assert!(Json::parse(&ok).is_ok());
    }
}
