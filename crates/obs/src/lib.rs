//! # microbrowse-obs — structured tracing, metrics, and profiling
//!
//! A zero-external-dependency observability layer for the microbrowse
//! workspace (consistent with the `crates/compat/` no-registry policy):
//!
//! * [`trace`] — span-based structured tracing: nested spans with parent /
//!   child ids and wall-clock timing, point events, and a pluggable
//!   [`trace::TraceSink`] (JSON-lines file sink for offline analysis, an
//!   in-memory sink for tests, or nothing at all).
//! * [`metrics`] — a process-wide registry of lock-free atomic counters,
//!   gauges, and log-bucketed latency histograms (p50/p90/p99), rendered in
//!   Prometheus exposition style. Metric mutation is a relaxed atomic
//!   RMW, so worker threads of `microbrowse-par` scoped pools aggregate
//!   into the same instrument without locks or post-hoc merging.
//! * [`flight`] — an always-on in-memory flight recorder: a fixed-size
//!   ring of recent trace-tagged records with tail sampling (anomalous
//!   requests are promoted to a retained buffer after the fact), serving
//!   the HTTP `/debug/trace` endpoint without a file sink.
//! * [`json`] — the tiny JSON writer backing the JSONL sink and the CLI's
//!   machine-readable outputs.
//!
//! ## The overhead contract
//!
//! Instrumentation is off by default. Every entry point — span creation,
//! event emission, counter increments, histogram observations — first loads
//! one process-wide [`AtomicBool`] with `Ordering::Relaxed` and returns
//! immediately when it is false. The disabled path therefore costs a single
//! relaxed load plus a predictable branch: cheap enough to leave the
//! instrumentation compiled into the serve hot path permanently.
//! `scripts/check.sh` enforces this with an overhead gate (see the
//! `obs_overhead` bench binary).
//!
//! ## Thread handoff
//!
//! Span parentage lives in a thread-local stack; scoped-pool workers would
//! start orphaned. [`trace::current_context`] captures the calling thread's
//! innermost span and [`trace::TraceContext::enter`] re-roots a worker
//! thread under it — `microbrowse-par` does this automatically, so spans
//! recorded inside `par_map` / `for_each_chunk` closures nest under the
//! span that launched the parallel section.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod flight;
pub mod json;
pub mod metrics;
pub mod trace;

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is instrumentation globally enabled? One relaxed atomic load — this is
/// the whole cost of every obs call site while disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn instrumentation on or off process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// `Some(Instant::now())` iff instrumentation is enabled. The idiom for
/// timing a hot path without paying for a clock read while disabled:
///
/// ```
/// let t = microbrowse_obs::now_if_enabled();
/// // ... work ...
/// microbrowse_obs::histogram!("work_latency_us").observe_since(t);
/// ```
#[inline]
pub fn now_if_enabled() -> Option<Instant> {
    if enabled() {
        Some(Instant::now())
    } else {
        None
    }
}

/// A cached [`metrics::Counter`] handle: the registry lookup runs once per
/// call site (`OnceLock`), after which an increment is one relaxed load
/// (the enabled flag) plus one relaxed `fetch_add`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Counter>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().counter($name))
    }};
}

/// A cached [`metrics::Gauge`] handle (see [`counter!`]).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Gauge>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().gauge($name))
    }};
}

/// A cached [`metrics::Histogram`] handle (see [`counter!`]).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::metrics::Histogram>> =
            ::std::sync::OnceLock::new();
        HANDLE.get_or_init(|| $crate::metrics::registry().histogram($name))
    }};
}
