//! Lock-free metric instruments and the process-wide registry.
//!
//! All mutation paths are relaxed atomic read-modify-writes on shared
//! instruments, so scoped-pool worker threads (`microbrowse-par`)
//! aggregate into the same counter or histogram without locks or
//! per-thread merging. The registry itself takes an `RwLock` only on the
//! get-or-create path; hot call sites cache `Arc` handles through the
//! [`crate::counter!`] / [`crate::gauge!`] / [`crate::histogram!`]
//! macros, so steady-state cost is one enabled-flag load plus one
//! relaxed RMW.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};
use std::time::Instant;

/// Monotonically increasing event count.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one (no-op while instrumentation is disabled).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n` (no-op while instrumentation is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// A value that can go up and down (thread counts, cache sizes).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Set the gauge (no-op while instrumentation is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Add `delta` (may be negative; no-op while disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.value.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Bucket count: values are bucketed by bit length, so bucket `i` holds
/// observations in `[2^(i-1), 2^i - 1]` (bucket 0 holds exactly 0, bucket
/// 64 holds values with the top bit set). 65 buckets cover all of `u64`.
const BUCKETS: usize = 65;

/// Log-bucketed latency histogram (microseconds). Observations land in
/// power-of-two buckets; quantiles are estimated from the cumulative
/// bucket walk, reported as the upper bound of the containing bucket —
/// at most 2x off, which is plenty for p50/p90/p99 latency telemetry.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [const { AtomicU64::new(0) }; BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Point-in-time copy of a histogram's aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values (µs).
    pub sum: u64,
    /// Smallest observation, 0 if empty.
    pub min: u64,
    /// Largest observation, 0 if empty.
    pub max: u64,
    /// Estimated p50 (µs).
    pub p50: u64,
    /// Estimated p90 (µs).
    pub p90: u64,
    /// Estimated p99 (µs).
    pub p99: u64,
}

fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one observation of `us` microseconds (no-op while
    /// instrumentation is disabled).
    #[inline]
    pub fn observe_us(&self, us: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(us, Ordering::Relaxed);
        self.min.fetch_min(us, Ordering::Relaxed);
        self.max.fetch_max(us, Ordering::Relaxed);
    }

    /// Record the elapsed time since `start` (the partner of
    /// [`crate::now_if_enabled`]; `None` is a no-op).
    #[inline]
    pub fn observe_since(&self, start: Option<Instant>) {
        if let Some(t) = start {
            self.observe_us(t.elapsed().as_micros() as u64);
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (0.0..=1.0) as the upper bound of the
    /// bucket containing that rank. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max.load(Ordering::Relaxed));
            }
        }
        self.max.load(Ordering::Relaxed)
    }

    /// Copy out all aggregates at once.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
            p50: self.quantile(0.5),
            p90: self.quantile(0.9),
            p99: self.quantile(0.99),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Name-keyed registry of metric instruments.
///
/// `reset` zeroes instrument values in place rather than dropping them:
/// call sites hold `Arc` handles cached in `OnceLock`s (the `counter!`
/// family), and those handles must keep pointing at the live instrument.
#[derive(Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

impl Registry {
    fn get_or_create<T: Default>(
        &self,
        name: &str,
        as_kind: impl Fn(&Metric) -> Option<Arc<T>>,
        wrap: impl Fn(Arc<T>) -> Metric,
    ) -> Arc<T> {
        {
            let metrics = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
            if let Some(existing) = metrics.get(name).and_then(&as_kind) {
                return existing;
            }
        }
        let mut metrics = self.metrics.write().unwrap_or_else(PoisonError::into_inner);
        if let Some(existing) = metrics.get(name).and_then(&as_kind) {
            return existing;
        }
        let fresh = Arc::new(T::default());
        // A name registered with a different kind keeps its original
        // entry; the caller gets a detached instrument instead of a
        // panic (misuse shows up as a missing metric, not a crash).
        if !metrics.contains_key(name) {
            metrics.insert(name.to_owned(), wrap(fresh.clone()));
        }
        fresh
    }

    /// Get or create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_create(
            name,
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
            Metric::Counter,
        )
    }

    /// Get or create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_create(
            name,
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            Metric::Gauge,
        )
    }

    /// Get or create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_create(
            name,
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            Metric::Histogram,
        )
    }

    /// Zero every instrument's value, keeping all handles valid.
    pub fn reset(&self) {
        let metrics = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
        for metric in metrics.values() {
            match metric {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }

    /// Render every registered metric in Prometheus text exposition
    /// style. Histograms render as summaries (p50/p90/p99 quantiles plus
    /// `_sum` and `_count`).
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().unwrap_or_else(PoisonError::into_inner);
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "# TYPE {name} counter");
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "# TYPE {name} gauge");
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let _ = writeln!(out, "# TYPE {name} summary");
                    let _ = writeln!(out, "{name}{{quantile=\"0.5\"}} {}", snap.p50);
                    let _ = writeln!(out, "{name}{{quantile=\"0.9\"}} {}", snap.p90);
                    let _ = writeln!(out, "{name}{{quantile=\"0.99\"}} {}", snap.p99);
                    let _ = writeln!(out, "{name}_sum {}", snap.sum);
                    let _ = writeln!(out, "{name}_count {}", snap.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::tests::exclusive;

    #[test]
    fn counters_and_gauges_respect_enabled_flag() {
        let _x = exclusive();
        let c = Counter::default();
        let g = Gauge::default();
        crate::set_enabled(false);
        c.inc();
        g.set(5);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        crate::set_enabled(true);
        c.inc();
        c.add(4);
        g.set(5);
        g.add(-2);
        assert_eq!(c.get(), 5);
        assert_eq!(g.get(), 3);
        crate::set_enabled(false);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let _x = exclusive();
        crate::set_enabled(true);
        let h = Histogram::default();
        // 90 fast observations, 10 slow ones.
        for _ in 0..90 {
            h.observe_us(10);
        }
        for _ in 0..10 {
            h.observe_us(1000);
        }
        let snap = h.snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 90 * 10 + 10 * 1000);
        assert_eq!(snap.min, 10);
        assert_eq!(snap.max, 1000);
        // 10 lands in bucket [8,15]; p50/p90 report its upper bound.
        assert_eq!(snap.p50, 15);
        assert_eq!(snap.p90, 15);
        // p99 lands among the slow observations, capped at observed max.
        assert!(snap.p99 >= 1000 && snap.p99 <= 1023, "p99={}", snap.p99);
    }

    #[test]
    fn histogram_edges() {
        let _x = exclusive();
        crate::set_enabled(true);
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0);
        h.observe_us(0);
        h.observe_us(u64::MAX);
        let snap = h.snapshot();
        crate::set_enabled(false);
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, u64::MAX);
        assert_eq!(snap.p50, 0);
        assert_eq!(snap.p99, u64::MAX);
    }

    #[test]
    fn registry_dedups_resets_and_renders() {
        let _x = exclusive();
        let reg = Registry::default();
        crate::set_enabled(true);
        let c1 = reg.counter("test_total");
        let c2 = reg.counter("test_total");
        assert!(Arc::ptr_eq(&c1, &c2));
        c1.add(3);
        reg.gauge("test_gauge").set(-7);
        reg.histogram("test_latency_us").observe_us(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE test_total counter"));
        assert!(text.contains("test_total 3"));
        assert!(text.contains("test_gauge -7"));
        assert!(text.contains("# TYPE test_latency_us summary"));
        assert!(text.contains("test_latency_us{quantile=\"0.99\"} 100"));
        assert!(text.contains("test_latency_us_count 1"));
        // Kind clash: handle is detached, registry entry unchanged.
        let detached = reg.gauge("test_total");
        detached.set(9);
        assert_eq!(reg.counter("test_total").get(), 3);
        reg.reset();
        assert_eq!(c1.get(), 0);
        let c3 = reg.counter("test_total");
        assert!(Arc::ptr_eq(&c1, &c3), "reset must keep handles live");
        crate::set_enabled(false);
    }

    #[test]
    fn concurrent_observations_aggregate() {
        let _x = exclusive();
        crate::set_enabled(true);
        let h = Histogram::default();
        let c = Counter::default();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..1000u64 {
                        h.observe_us(i % 64);
                        c.inc();
                    }
                });
            }
        });
        crate::set_enabled(false);
        assert_eq!(c.get(), 4000);
        assert_eq!(h.count(), 4000);
    }

    #[test]
    fn macros_cache_handles() {
        let _x = exclusive();
        crate::set_enabled(true);
        let a = crate::counter!("macro_cached_total");
        a.inc();
        crate::counter!("macro_cached_total").inc();
        crate::set_enabled(false);
        // Same call site → same OnceLock → same handle; but even across
        // call sites the registry dedups by name.
        assert_eq!(registry().counter("macro_cached_total").get(), 2);
    }
}
