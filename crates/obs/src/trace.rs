//! Span-based structured tracing with pluggable sinks.
//!
//! A [`Span`] is an RAII guard: creating one (via [`span`]) assigns it a
//! process-unique id, parents it under the calling thread's innermost open
//! span, and starts a timer; dropping it emits one [`SpanRecord`] to the
//! installed [`TraceSink`]. Point-in-time facts ride on [`event`], which
//! attaches to the innermost open span. Everything is a no-op while
//! [`crate::enabled`] is false — span construction then returns an inert
//! guard without touching the clock, the id counter, or the sink.
//!
//! Parentage is tracked per thread. To keep spans nested across the scoped
//! thread pools of `microbrowse-par`, capture [`current_context`] before
//! spawning and [`TraceContext::enter`] inside each worker.
//!
//! A [`TraceContext`] also carries a 128-bit **trace id** and a sampling
//! flag. The trace id groups every span and event recorded on behalf of one
//! logical request, across threads and (via the `X-Mb-Trace-Id` wire
//! header) across processes; the sampling flag asks downstream tail
//! samplers to retain the trace even when nothing anomalous happened.

use std::cell::{Cell, RefCell};
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use crate::json::JsonObject;

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One completed span, delivered to the sink when the guard drops.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// 128-bit trace id active when the span opened (0 = no trace).
    pub trace: u128,
    /// Span name (stage taxonomy, e.g. `"pipeline.stats"`).
    pub name: &'static str,
    /// Small per-process id of the recording thread.
    pub thread: u64,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Attached fields, in attachment order.
    pub fields: Vec<(&'static str, Value)>,
}

/// One point-in-time event, delivered to the sink immediately.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Id of the innermost open span on the emitting thread (0 = none).
    pub span: u64,
    /// 128-bit trace id active when the event fired (0 = no trace).
    pub trace: u128,
    /// Event name (e.g. `"serve.rollback"`).
    pub name: &'static str,
    /// Small per-process id of the recording thread.
    pub thread: u64,
    /// Emission time, microseconds since the process trace epoch.
    pub at_us: u64,
    /// Attached fields, in attachment order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Destination for completed spans and events. Implementations must be
/// cheap and non-blocking-ish: they run inline on the instrumented thread.
pub trait TraceSink: Send + Sync {
    /// A span closed.
    fn on_span(&self, span: &SpanRecord);
    /// An event fired.
    fn on_event(&self, event: &EventRecord);
    /// Flush any buffering (file sinks). Default: nothing.
    fn flush(&self) {}
}

static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
    // (trace id, sampled) for the request the thread is currently serving.
    static CURRENT_TRACE: Cell<(u128, bool)> = const { Cell::new((0, false)) };
}

/// Allocate a fresh, effectively-unique 128-bit trace id. Uniqueness comes
/// from mixing wall-clock nanoseconds, a process-global counter, the pid,
/// and the calling thread id through a SplitMix64 finalizer — good enough
/// for correlating requests, with zero external dependencies.
pub fn new_trace_id() -> u128 {
    fn mix(mut z: u64) -> u64 {
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
    static CTR: AtomicU64 = AtomicU64::new(0x9e37_79b9_7f4a_7c15);
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_nanos() as u64);
    let salt = CTR.fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
    let hi = mix(nanos ^ salt);
    let lo =
        mix(hi
            ^ mix(thread_id().wrapping_mul(0x2545_f491_4f6c_dd1d) ^ u64::from(std::process::id())));
    let id = (u128::from(hi) << 64) | u128::from(lo);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Render a trace id as the 32-character lowercase hex form used on the
/// wire (`X-Mb-Trace-Id`) and in JSON dumps.
pub fn format_trace_id(id: u128) -> String {
    format!("{id:032x}")
}

/// Parse a wire trace id: 1–32 hex digits, case-insensitive. Returns
/// `None` for malformed input or the reserved all-zero id.
pub fn parse_trace_id(s: &str) -> Option<u128> {
    let s = s.trim();
    if s.is_empty() || s.len() > 32 || !s.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    match u128::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// The trace id active on the calling thread (0 when none is entered).
pub fn current_trace_id() -> u128 {
    CURRENT_TRACE.with(|t| t.get().0)
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

fn with_sink(f: impl FnOnce(&dyn TraceSink)) {
    let guard = SINK.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = guard.as_ref() {
        f(sink.as_ref());
    }
}

/// Install `sink` as the process-wide trace destination (replacing any
/// previous one). Installing a sink does not enable instrumentation; call
/// [`crate::set_enabled`] as well.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = Some(sink);
}

/// Remove the installed sink (spans and events are dropped again).
pub fn clear_sink() {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// The currently installed sink, if any. Lets callers wrap it in a
/// [`TeeSink`] instead of silently replacing it.
pub fn installed_sink() -> Option<Arc<dyn TraceSink>> {
    SINK.read().unwrap_or_else(PoisonError::into_inner).clone()
}

/// Flush the installed sink, if any.
pub fn flush() {
    with_sink(|sink| sink.flush());
}

struct SpanInner {
    id: u64,
    parent: u64,
    trace: u128,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, Value)>,
}

/// An open span. Dropping it records the duration and emits the record;
/// an inert guard (instrumentation disabled at creation) does nothing.
pub struct Span {
    inner: Option<SpanInner>,
}

/// Open a span named `name`, parented under the calling thread's innermost
/// open span. Returns an inert guard when instrumentation is disabled.
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            trace: CURRENT_TRACE.with(|t| t.get().0),
            name,
            start: Instant::now(),
            start_us: micros_since_epoch(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Attach a field (builder form).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.add(key, value);
        self
    }

    /// Attach a field to an already-bound span.
    pub fn add(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                // Out-of-order drop (span moved across an early return):
                // remove wherever it sits so the stack stays consistent.
                stack.retain(|&id| id != inner.id);
            }
        });
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            trace: inner.trace,
            name: inner.name,
            thread: thread_id(),
            start_us: inner.start_us,
            dur_us: inner.start.elapsed().as_micros() as u64,
            fields: inner.fields,
        };
        with_sink(|sink| sink.on_span(&record));
    }
}

/// A pending event: fields attach via [`EventBuilder::with`], emission
/// happens on drop. Inert when instrumentation is disabled.
pub struct EventBuilder {
    inner: Option<(&'static str, Vec<(&'static str, Value)>)>,
}

/// Record a point-in-time event named `name`, attached to the calling
/// thread's innermost open span (if any).
pub fn event(name: &'static str) -> EventBuilder {
    if !crate::enabled() {
        return EventBuilder { inner: None };
    }
    EventBuilder {
        inner: Some((name, Vec::new())),
    }
}

impl EventBuilder {
    /// Attach a field.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some((_, fields)) = &mut self.inner {
            fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        let Some((name, fields)) = self.inner.take() else {
            return;
        };
        let record = EventRecord {
            span: SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0)),
            trace: CURRENT_TRACE.with(|t| t.get().0),
            name,
            thread: thread_id(),
            at_us: micros_since_epoch(),
            fields,
        };
        with_sink(|sink| sink.on_event(&record));
    }
}

/// A captured span context: the innermost span id of the capturing thread
/// plus the active 128-bit trace id and sampling flag, for re-rooting
/// spans recorded on worker threads (or stitching a request that crossed a
/// process boundary via the `X-Mb-Trace-Id` / `X-Mb-Parent-Span` headers).
#[derive(Debug, Clone, Copy)]
pub struct TraceContext {
    parent: u64,
    trace: u128,
    sampled: bool,
}

/// Capture the calling thread's innermost open span (0 when none or when
/// instrumentation is disabled) together with its trace id and sampling
/// flag.
pub fn current_context() -> TraceContext {
    if !crate::enabled() {
        return TraceContext {
            parent: 0,
            trace: 0,
            sampled: false,
        };
    }
    let (trace, sampled) = CURRENT_TRACE.with(Cell::get);
    TraceContext {
        parent: SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0)),
        trace,
        sampled,
    }
}

impl TraceContext {
    /// A context rooting a fresh local trace: no parent span, the given
    /// trace id, sampling off.
    pub fn for_trace(trace: u128) -> Self {
        TraceContext {
            parent: 0,
            trace,
            sampled: false,
        }
    }

    /// A context reconstructed from wire headers: a remote parent span id
    /// (0 = none), a propagated trace id, and the caller's sampling flag.
    pub fn from_wire(trace: u128, parent: u64, sampled: bool) -> Self {
        TraceContext {
            parent,
            trace,
            sampled,
        }
    }

    /// The captured parent span id (0 = none).
    pub fn parent(&self) -> u64 {
        self.parent
    }

    /// The captured trace id (0 = none).
    pub fn trace_id(&self) -> u128 {
        self.trace
    }

    /// Whether the trace asked to be retained regardless of anomalies.
    pub fn sampled(&self) -> bool {
        self.sampled
    }

    /// Make this context the parent of spans recorded on the current
    /// thread (and its trace id the thread's active trace) until the
    /// returned guard drops. An empty context, or one entered while
    /// instrumentation is disabled, yields an inert guard.
    pub fn enter(self) -> ContextGuard {
        if (self.parent == 0 && self.trace == 0) || !crate::enabled() {
            return ContextGuard {
                pushed: false,
                prev_trace: None,
            };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(self.parent));
        let prev = CURRENT_TRACE.with(|t| t.replace((self.trace, self.sampled)));
        ContextGuard {
            pushed: true,
            prev_trace: Some(prev),
        }
    }
}

/// Guard restoring the thread's span parentage and trace id on drop.
pub struct ContextGuard {
    pushed: bool,
    prev_trace: Option<(u128, bool)>,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.pushed {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
        if let Some(prev) = self.prev_trace.take() {
            CURRENT_TRACE.with(|t| t.set(prev));
        }
    }
}

/// Sink that discards everything (placeholder while measuring pure
/// tracing overhead, or to enable metrics without span collection).
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_span(&self, _span: &SpanRecord) {}
    fn on_event(&self, _event: &EventRecord) {}
}

/// Fan-out sink: delivers every record to each of its children in order.
/// Used to run the always-on flight recorder alongside an optional file
/// sink without widening the single process-wide sink slot.
pub struct TeeSink {
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl TeeSink {
    /// A tee over the given children (delivery order = vec order).
    pub fn new(sinks: Vec<Arc<dyn TraceSink>>) -> Self {
        Self { sinks }
    }
}

impl TraceSink for TeeSink {
    fn on_span(&self, span: &SpanRecord) {
        for sink in &self.sinks {
            sink.on_span(span);
        }
    }

    fn on_event(&self, event: &EventRecord) {
        for sink in &self.sinks {
            sink.on_event(event);
        }
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }
}

/// In-memory sink for tests: captures every record for later assertions.
#[derive(Default)]
pub struct MemorySink {
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all captured spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock(&self.spans).clone()
    }

    /// Snapshot of all captured events.
    pub fn events(&self) -> Vec<EventRecord> {
        lock(&self.events).clone()
    }

    /// Captured events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<EventRecord> {
        lock(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Captured spans with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        lock(&self.spans)
            .iter()
            .filter(|s| s.name == name)
            .cloned()
            .collect()
    }

    /// Drop everything captured so far.
    pub fn clear(&self) {
        lock(&self.spans).clear();
        lock(&self.events).clear();
    }
}

impl TraceSink for MemorySink {
    fn on_span(&self, span: &SpanRecord) {
        lock(&self.spans).push(span.clone());
    }

    fn on_event(&self, event: &EventRecord) {
        lock(&self.events).push(event.clone());
    }
}

/// JSON-lines file sink: one JSON object per span or event, in emission
/// order. Write failures are counted, never panicked on.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
    write_errors: AtomicU64,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> Result<Self, std::io::Error> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            out: Mutex::new(std::io::BufWriter::new(file)),
            write_errors: AtomicU64::new(0),
        })
    }

    /// Number of records lost to write errors.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn note_write_error(&self) {
        self.write_errors.fetch_add(1, Ordering::Relaxed);
        crate::counter!("microbrowse_trace_write_errors_total").inc();
        static WARNED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
        if !WARNED.swap(true, Ordering::Relaxed) {
            eprintln!("warning: trace JSONL write failed; further losses counted in microbrowse_trace_write_errors_total");
        }
    }

    fn write_line(&self, line: &str) {
        let mut out = lock(&self.out);
        if writeln!(out, "{line}").is_err() {
            self.note_write_error();
        }
    }
}

fn fields_json(fields: &[(&'static str, Value)]) -> String {
    let mut obj = JsonObject::new();
    for (key, value) in fields {
        obj = obj.value(key, value);
    }
    obj.finish()
}

impl TraceSink for JsonlSink {
    fn on_span(&self, span: &SpanRecord) {
        let mut obj = JsonObject::new()
            .str("type", "span")
            .u64("id", span.id)
            .u64("parent", span.parent);
        if span.trace != 0 {
            obj = obj.str("trace", &format_trace_id(span.trace));
        }
        let line = obj
            .str("name", span.name)
            .u64("thread", span.thread)
            .u64("start_us", span.start_us)
            .u64("dur_us", span.dur_us)
            .raw("fields", &fields_json(&span.fields))
            .finish();
        self.write_line(&line);
    }

    fn on_event(&self, event: &EventRecord) {
        let mut obj = JsonObject::new()
            .str("type", "event")
            .str("name", event.name)
            .u64("span", event.span);
        if event.trace != 0 {
            obj = obj.str("trace", &format_trace_id(event.trace));
        }
        let line = obj
            .u64("thread", event.thread)
            .u64("at_us", event.at_us)
            .raw("fields", &fields_json(&event.fields))
            .finish();
        self.write_line(&line);
    }

    fn flush(&self) {
        let mut out = lock(&self.out);
        if out.flush().is_err() {
            self.note_write_error();
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // Tracing state is process-global; tests that toggle it serialize here.
    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_memory_sink<R>(f: impl FnOnce(&MemorySink) -> R) -> R {
        let sink = Arc::new(MemorySink::new());
        install_sink(sink.clone());
        crate::set_enabled(true);
        let r = f(&sink);
        crate::set_enabled(false);
        clear_sink();
        r
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _x = exclusive();
        crate::set_enabled(false);
        let sink = Arc::new(MemorySink::new());
        install_sink(sink.clone());
        {
            let _s = span("never").with("k", 1u64);
            event("nope").with("k", 2u64);
        }
        assert!(sink.spans().is_empty());
        assert!(sink.events().is_empty());
        clear_sink();
    }

    #[test]
    fn nesting_records_parent_child_ids() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            {
                let outer = span("outer");
                let outer_id = outer.id();
                {
                    let inner = span("inner").with("n", 3u64);
                    assert_ne!(inner.id(), 0);
                    assert_ne!(inner.id(), outer_id);
                }
                event("mid").with("ok", true);
            }
            let spans = sink.spans();
            assert_eq!(spans.len(), 2);
            // Children emit before parents (drop order).
            let inner = &spans[0];
            let outer = &spans[1];
            assert_eq!(inner.name, "inner");
            assert_eq!(outer.name, "outer");
            assert_eq!(inner.parent, outer.id);
            assert_eq!(outer.parent, 0);
            assert_eq!(inner.fields, vec![("n", Value::U64(3))]);
            let events = sink.events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].span, outer.id);
        });
    }

    #[test]
    fn context_reparents_worker_threads() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            let root_id = {
                let root = span("root");
                let ctx = current_context();
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        let _guard = ctx.enter();
                        let _child = span("worker");
                    });
                });
                root.id()
            };
            let workers = sink.spans_named("worker");
            assert_eq!(workers.len(), 1);
            assert_eq!(workers[0].parent, root_id);
            // Worker thread gets a distinct thread id.
            let roots = sink.spans_named("root");
            assert_ne!(workers[0].thread, roots[0].thread);
        });
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let _x = exclusive();
        let dir = std::env::temp_dir().join(format!("mbobs-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            install_sink(sink.clone());
            crate::set_enabled(true);
            {
                let _s = span("stage").with("pairs", 12u64).with("label", "a\"b");
                event("tick").with("x", 1.5f64);
            }
            {
                let _ctx = TraceContext::for_trace(0xabc).enter();
                let _s = span("traced.stage");
            }
            crate::set_enabled(false);
            clear_sink();
            sink.flush();
            assert_eq!(sink.write_errors(), 0);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"event\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"type\":\"span\""), "{}", lines[1]);
        assert!(lines[1].contains("\"name\":\"stage\""));
        assert!(lines[1].contains("\"pairs\":12"));
        assert!(lines[1].contains("a\\\"b"));
        assert!(
            !lines[1].contains("\"trace\""),
            "traceless records omit the trace field: {}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"trace\":\"00000000000000000000000000000abc\""),
            "{}",
            lines[2]
        );
        for line in lines {
            crate::json::assert_parses(line);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn trace_id_wire_format_round_trips() {
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None, "all-zero id is reserved");
        assert_eq!(parse_trace_id("not-hex"), None);
        assert_eq!(parse_trace_id(&"f".repeat(33)), None);
        assert_eq!(parse_trace_id("ABC"), Some(0xabc), "case-insensitive");
        let id = new_trace_id();
        assert_ne!(id, 0);
        assert_ne!(new_trace_id(), id);
        let wire = format_trace_id(id);
        assert_eq!(wire.len(), 32);
        assert_eq!(parse_trace_id(&wire), Some(id));
    }

    #[test]
    fn context_carries_trace_id_across_threads() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            let trace = 0xabcu128;
            let guard = TraceContext::from_wire(trace, 0, true).enter();
            let root = span("req");
            let root_id = root.id();
            let ctx = current_context();
            assert_eq!(ctx.trace_id(), trace);
            assert!(ctx.sampled());
            assert_eq!(ctx.parent(), root_id);
            std::thread::scope(|scope| {
                scope.spawn(move || {
                    let _g = ctx.enter();
                    let _child = span("worker");
                    event("tick");
                });
            });
            drop(root);
            drop(guard);
            assert_eq!(current_trace_id(), 0, "guard restores previous trace");
            for recorded in sink.spans() {
                assert_eq!(recorded.trace, trace);
            }
            assert_eq!(sink.events()[0].trace, trace);
            assert_eq!(sink.spans_named("worker")[0].parent, root_id);
        });
    }

    #[test]
    fn tee_sink_delivers_to_all_children() {
        let _x = exclusive();
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        install_sink(Arc::new(TeeSink::new(vec![a.clone(), b.clone()])));
        crate::set_enabled(true);
        {
            let _s = span("both");
            event("twice");
        }
        crate::set_enabled(false);
        clear_sink();
        assert_eq!(a.spans_named("both").len(), 1);
        assert_eq!(b.spans_named("both").len(), 1);
        assert_eq!(a.events_named("twice").len(), 1);
        assert_eq!(b.events_named("twice").len(), 1);
    }

    #[test]
    fn early_return_span_drop_keeps_stack_consistent() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            let a = span("a");
            let b = span("b");
            drop(a); // out of order
            let c = span("c");
            drop(c);
            drop(b);
            let spans = sink.spans();
            assert_eq!(spans.len(), 3);
            // c was opened while b was innermost.
            let c = sink.spans_named("c");
            let b = sink.spans_named("b");
            assert_eq!(c[0].parent, b[0].id);
        });
    }
}
