//! Span-based structured tracing with pluggable sinks.
//!
//! A [`Span`] is an RAII guard: creating one (via [`span`]) assigns it a
//! process-unique id, parents it under the calling thread's innermost open
//! span, and starts a timer; dropping it emits one [`SpanRecord`] to the
//! installed [`TraceSink`]. Point-in-time facts ride on [`event`], which
//! attaches to the innermost open span. Everything is a no-op while
//! [`crate::enabled`] is false — span construction then returns an inert
//! guard without touching the clock, the id counter, or the sink.
//!
//! Parentage is tracked per thread. To keep spans nested across the scoped
//! thread pools of `microbrowse-par`, capture [`current_context`] before
//! spawning and [`TraceContext::enter`] inside each worker.

use std::cell::RefCell;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock};
use std::time::Instant;

use crate::json::JsonObject;

/// A typed field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One completed span, delivered to the sink when the guard drops.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Id of the enclosing span, or 0 for a root span.
    pub parent: u64,
    /// Span name (stage taxonomy, e.g. `"pipeline.stats"`).
    pub name: &'static str,
    /// Small per-process id of the recording thread.
    pub thread: u64,
    /// Start time, microseconds since the process trace epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Attached fields, in attachment order.
    pub fields: Vec<(&'static str, Value)>,
}

/// One point-in-time event, delivered to the sink immediately.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Id of the innermost open span on the emitting thread (0 = none).
    pub span: u64,
    /// Event name (e.g. `"serve.rollback"`).
    pub name: &'static str,
    /// Small per-process id of the recording thread.
    pub thread: u64,
    /// Emission time, microseconds since the process trace epoch.
    pub at_us: u64,
    /// Attached fields, in attachment order.
    pub fields: Vec<(&'static str, Value)>,
}

/// Destination for completed spans and events. Implementations must be
/// cheap and non-blocking-ish: they run inline on the instrumented thread.
pub trait TraceSink: Send + Sync {
    /// A span closed.
    fn on_span(&self, span: &SpanRecord);
    /// An event fired.
    fn on_event(&self, event: &EventRecord);
    /// Flush any buffering (file sinks). Default: nothing.
    fn flush(&self) {}
}

static SINK: RwLock<Option<Arc<dyn TraceSink>>> = RwLock::new(None);
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn micros_since_epoch() -> u64 {
    epoch().elapsed().as_micros() as u64
}

fn thread_id() -> u64 {
    THREAD_ID.with(|t| *t)
}

fn with_sink(f: impl FnOnce(&dyn TraceSink)) {
    let guard = SINK.read().unwrap_or_else(PoisonError::into_inner);
    if let Some(sink) = guard.as_ref() {
        f(sink.as_ref());
    }
}

/// Install `sink` as the process-wide trace destination (replacing any
/// previous one). Installing a sink does not enable instrumentation; call
/// [`crate::set_enabled`] as well.
pub fn install_sink(sink: Arc<dyn TraceSink>) {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = Some(sink);
}

/// Remove the installed sink (spans and events are dropped again).
pub fn clear_sink() {
    *SINK.write().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Flush the installed sink, if any.
pub fn flush() {
    with_sink(|sink| sink.flush());
}

struct SpanInner {
    id: u64,
    parent: u64,
    name: &'static str,
    start: Instant,
    start_us: u64,
    fields: Vec<(&'static str, Value)>,
}

/// An open span. Dropping it records the duration and emits the record;
/// an inert guard (instrumentation disabled at creation) does nothing.
pub struct Span {
    inner: Option<SpanInner>,
}

/// Open a span named `name`, parented under the calling thread's innermost
/// open span. Returns an inert guard when instrumentation is disabled.
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { inner: None };
    }
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        let parent = stack.last().copied().unwrap_or(0);
        stack.push(id);
        parent
    });
    Span {
        inner: Some(SpanInner {
            id,
            parent,
            name,
            start: Instant::now(),
            start_us: micros_since_epoch(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Attach a field (builder form).
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        self.add(key, value);
        self
    }

    /// Attach a field to an already-bound span.
    pub fn add(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into()));
        }
    }

    /// This span's id (0 when inert).
    pub fn id(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.id)
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if stack.last() == Some(&inner.id) {
                stack.pop();
            } else {
                // Out-of-order drop (span moved across an early return):
                // remove wherever it sits so the stack stays consistent.
                stack.retain(|&id| id != inner.id);
            }
        });
        let record = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            thread: thread_id(),
            start_us: inner.start_us,
            dur_us: inner.start.elapsed().as_micros() as u64,
            fields: inner.fields,
        };
        with_sink(|sink| sink.on_span(&record));
    }
}

/// A pending event: fields attach via [`EventBuilder::with`], emission
/// happens on drop. Inert when instrumentation is disabled.
pub struct EventBuilder {
    inner: Option<(&'static str, Vec<(&'static str, Value)>)>,
}

/// Record a point-in-time event named `name`, attached to the calling
/// thread's innermost open span (if any).
pub fn event(name: &'static str) -> EventBuilder {
    if !crate::enabled() {
        return EventBuilder { inner: None };
    }
    EventBuilder {
        inner: Some((name, Vec::new())),
    }
}

impl EventBuilder {
    /// Attach a field.
    pub fn with(mut self, key: &'static str, value: impl Into<Value>) -> Self {
        if let Some((_, fields)) = &mut self.inner {
            fields.push((key, value.into()));
        }
        self
    }
}

impl Drop for EventBuilder {
    fn drop(&mut self) {
        let Some((name, fields)) = self.inner.take() else {
            return;
        };
        let record = EventRecord {
            span: SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0)),
            name,
            thread: thread_id(),
            at_us: micros_since_epoch(),
            fields,
        };
        with_sink(|sink| sink.on_event(&record));
    }
}

/// A captured span context: the innermost span id of the capturing thread,
/// for re-rooting spans recorded on worker threads.
#[derive(Debug, Clone, Copy)]
pub struct TraceContext {
    parent: u64,
}

/// Capture the calling thread's innermost open span (0 when none or when
/// instrumentation is disabled).
pub fn current_context() -> TraceContext {
    if !crate::enabled() {
        return TraceContext { parent: 0 };
    }
    TraceContext {
        parent: SPAN_STACK.with(|s| s.borrow().last().copied().unwrap_or(0)),
    }
}

impl TraceContext {
    /// Make this context the parent of spans recorded on the current
    /// thread until the returned guard drops. A context with no span (or
    /// captured while disabled) yields an inert guard.
    pub fn enter(self) -> ContextGuard {
        if self.parent == 0 || !crate::enabled() {
            return ContextGuard { pushed: false };
        }
        SPAN_STACK.with(|s| s.borrow_mut().push(self.parent));
        ContextGuard { pushed: true }
    }
}

/// Guard restoring the thread's span parentage on drop.
pub struct ContextGuard {
    pushed: bool,
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        if self.pushed {
            SPAN_STACK.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
}

/// Sink that discards everything (placeholder while measuring pure
/// tracing overhead, or to enable metrics without span collection).
pub struct NullSink;

impl TraceSink for NullSink {
    fn on_span(&self, _span: &SpanRecord) {}
    fn on_event(&self, _event: &EventRecord) {}
}

/// In-memory sink for tests: captures every record for later assertions.
#[derive(Default)]
pub struct MemorySink {
    spans: Mutex<Vec<SpanRecord>>,
    events: Mutex<Vec<EventRecord>>,
}

impl MemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot of all captured spans.
    pub fn spans(&self) -> Vec<SpanRecord> {
        lock(&self.spans).clone()
    }

    /// Snapshot of all captured events.
    pub fn events(&self) -> Vec<EventRecord> {
        lock(&self.events).clone()
    }

    /// Captured events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<EventRecord> {
        lock(&self.events)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    /// Captured spans with the given name.
    pub fn spans_named(&self, name: &str) -> Vec<SpanRecord> {
        lock(&self.spans)
            .iter()
            .filter(|s| s.name == name)
            .cloned()
            .collect()
    }

    /// Drop everything captured so far.
    pub fn clear(&self) {
        lock(&self.spans).clear();
        lock(&self.events).clear();
    }
}

impl TraceSink for MemorySink {
    fn on_span(&self, span: &SpanRecord) {
        lock(&self.spans).push(span.clone());
    }

    fn on_event(&self, event: &EventRecord) {
        lock(&self.events).push(event.clone());
    }
}

/// JSON-lines file sink: one JSON object per span or event, in emission
/// order. Write failures are counted, never panicked on.
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
    write_errors: AtomicU64,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path`.
    pub fn create(path: &std::path::Path) -> Result<Self, std::io::Error> {
        let file = std::fs::File::create(path)?;
        Ok(Self {
            out: Mutex::new(std::io::BufWriter::new(file)),
            write_errors: AtomicU64::new(0),
        })
    }

    /// Number of records lost to write errors.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }

    fn write_line(&self, line: &str) {
        let mut out = lock(&self.out);
        if writeln!(out, "{line}").is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn fields_json(fields: &[(&'static str, Value)]) -> String {
    let mut obj = JsonObject::new();
    for (key, value) in fields {
        obj = obj.value(key, value);
    }
    obj.finish()
}

impl TraceSink for JsonlSink {
    fn on_span(&self, span: &SpanRecord) {
        let line = JsonObject::new()
            .str("type", "span")
            .u64("id", span.id)
            .u64("parent", span.parent)
            .str("name", span.name)
            .u64("thread", span.thread)
            .u64("start_us", span.start_us)
            .u64("dur_us", span.dur_us)
            .raw("fields", &fields_json(&span.fields))
            .finish();
        self.write_line(&line);
    }

    fn on_event(&self, event: &EventRecord) {
        let line = JsonObject::new()
            .str("type", "event")
            .str("name", event.name)
            .u64("span", event.span)
            .u64("thread", event.thread)
            .u64("at_us", event.at_us)
            .raw("fields", &fields_json(&event.fields))
            .finish();
        self.write_line(&line);
    }

    fn flush(&self) {
        let mut out = lock(&self.out);
        if out.flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    // Tracing state is process-global; tests that toggle it serialize here.
    pub(crate) fn exclusive() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn with_memory_sink<R>(f: impl FnOnce(&MemorySink) -> R) -> R {
        let sink = Arc::new(MemorySink::new());
        install_sink(sink.clone());
        crate::set_enabled(true);
        let r = f(&sink);
        crate::set_enabled(false);
        clear_sink();
        r
    }

    #[test]
    fn disabled_spans_are_inert() {
        let _x = exclusive();
        crate::set_enabled(false);
        let sink = Arc::new(MemorySink::new());
        install_sink(sink.clone());
        {
            let _s = span("never").with("k", 1u64);
            event("nope").with("k", 2u64);
        }
        assert!(sink.spans().is_empty());
        assert!(sink.events().is_empty());
        clear_sink();
    }

    #[test]
    fn nesting_records_parent_child_ids() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            {
                let outer = span("outer");
                let outer_id = outer.id();
                {
                    let inner = span("inner").with("n", 3u64);
                    assert_ne!(inner.id(), 0);
                    assert_ne!(inner.id(), outer_id);
                }
                event("mid").with("ok", true);
            }
            let spans = sink.spans();
            assert_eq!(spans.len(), 2);
            // Children emit before parents (drop order).
            let inner = &spans[0];
            let outer = &spans[1];
            assert_eq!(inner.name, "inner");
            assert_eq!(outer.name, "outer");
            assert_eq!(inner.parent, outer.id);
            assert_eq!(outer.parent, 0);
            assert_eq!(inner.fields, vec![("n", Value::U64(3))]);
            let events = sink.events();
            assert_eq!(events.len(), 1);
            assert_eq!(events[0].span, outer.id);
        });
    }

    #[test]
    fn context_reparents_worker_threads() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            let root_id = {
                let root = span("root");
                let ctx = current_context();
                std::thread::scope(|scope| {
                    scope.spawn(move || {
                        let _guard = ctx.enter();
                        let _child = span("worker");
                    });
                });
                root.id()
            };
            let workers = sink.spans_named("worker");
            assert_eq!(workers.len(), 1);
            assert_eq!(workers[0].parent, root_id);
            // Worker thread gets a distinct thread id.
            let roots = sink.spans_named("root");
            assert_ne!(workers[0].thread, roots[0].thread);
        });
    }

    #[test]
    fn jsonl_sink_writes_valid_lines() {
        let _x = exclusive();
        let dir = std::env::temp_dir().join(format!("mbobs-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.jsonl");
        {
            let sink = Arc::new(JsonlSink::create(&path).unwrap());
            install_sink(sink.clone());
            crate::set_enabled(true);
            {
                let _s = span("stage").with("pairs", 12u64).with("label", "a\"b");
                event("tick").with("x", 1.5f64);
            }
            crate::set_enabled(false);
            clear_sink();
            sink.flush();
            assert_eq!(sink.write_errors(), 0);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"event\""), "{}", lines[0]);
        assert!(lines[1].starts_with("{\"type\":\"span\""), "{}", lines[1]);
        assert!(lines[1].contains("\"name\":\"stage\""));
        assert!(lines[1].contains("\"pairs\":12"));
        assert!(lines[1].contains("a\\\"b"));
        for line in lines {
            crate::json::assert_parses(line);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn early_return_span_drop_keeps_stack_consistent() {
        let _x = exclusive();
        with_memory_sink(|sink| {
            let a = span("a");
            let b = span("b");
            drop(a); // out of order
            let c = span("c");
            drop(c);
            drop(b);
            let spans = sink.spans();
            assert_eq!(spans.len(), 3);
            // c was opened while b was innermost.
            let c = sink.spans_named("c");
            let b = sink.spans_named("b");
            assert_eq!(c[0].parent, b[0].id);
        });
    }
}
