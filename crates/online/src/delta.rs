//! Incremental `StatsDelta` layer: feedback batches → pure count
//! increments over [`StatsDb`].
//!
//! The feature-statistics database stores raw positive/negative counts;
//! the Laplace-smoothed odds the featurizer derives from them are a pure
//! function of those counts. That makes a delta exactly another `StatsDb`:
//! build one from the batch's own pairwise evidence and fold it into the
//! base with [`StatsDb::merge`]. Addition of counts is associative and
//! commutative, so folding N batches one at a time or all at once yields
//! bit-identical databases — no rebuild, no approximation.

use std::collections::BTreeMap;

use microbrowse_api::v1::{FeedbackEvent, FeedbackRequest};
use microbrowse_core::{
    build_stats_from_corpus, AdCorpus, AdGroup, AdGroupId, Creative, CreativeId, PairFilter,
    Placement, StatsBuildConfig,
};
use microbrowse_store::StatsDb;
use microbrowse_text::Snippet;

/// Group raw feedback events into an [`AdCorpus`]: one adgroup per
/// distinct `adgroup` id (keyword = the query class), one creative per
/// distinct `creative` id with its impression/click counts summed.
/// Deterministic: adgroups and creatives come out in ascending-id order.
pub fn corpus_from_events<'a>(events: impl IntoIterator<Item = &'a FeedbackEvent>) -> AdCorpus {
    struct CreativeAcc {
        snippet: String,
        impressions: u64,
        clicks: u64,
    }
    let mut groups: BTreeMap<u64, (String, BTreeMap<u64, CreativeAcc>)> = BTreeMap::new();
    for ev in events {
        let (query_class, creatives) = groups
            .entry(ev.adgroup)
            .or_insert_with(|| (ev.query_class.clone(), BTreeMap::new()));
        if query_class.is_empty() && !ev.query_class.is_empty() {
            *query_class = ev.query_class.clone();
        }
        let acc = creatives.entry(ev.creative).or_insert_with(|| CreativeAcc {
            snippet: ev.snippet.clone(),
            impressions: 0,
            clicks: 0,
        });
        if !ev.snippet.is_empty() {
            acc.snippet = ev.snippet.clone();
        }
        acc.impressions += ev.impressions;
        acc.clicks += ev.clicks.min(ev.impressions);
    }

    let adgroups = groups
        .into_iter()
        .map(|(id, (keyword, creatives))| AdGroup {
            id: AdGroupId(id),
            keyword,
            placement: Placement::Top,
            creatives: creatives
                .into_iter()
                .map(|(cid, acc)| Creative {
                    id: CreativeId(cid),
                    snippet: parse_snippet(&acc.snippet),
                    impressions: acc.impressions,
                    clicks: acc.clicks.min(acc.impressions),
                })
                .collect(),
        })
        .collect();
    AdCorpus { adgroups }
}

/// Parse the wire spelling of a creative (`|`-separated lines) into a
/// [`Snippet`], the same convention `/v1/score` uses.
pub fn parse_snippet(text: &str) -> Snippet {
    Snippet::from_lines(text.split('|').map(str::trim))
}

/// Build the stats delta for one feedback batch: extract significant
/// pairs from the batch's own adgroups (default [`PairFilter`]) and run
/// the standard stats build over them. The result is a [`StatsDb`] of
/// pure count increments, ready to fold with [`StatsDb::merge`].
pub fn delta_from_batch(batch: &FeedbackRequest) -> StatsDb {
    let corpus = corpus_from_events(&batch.events);
    let cfg = StatsBuildConfig {
        threads: 1,
        ..StatsBuildConfig::default()
    };
    let (_tc, _pairs, delta) = build_stats_from_corpus(&corpus, &PairFilter::default(), &cfg);
    delta
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        adgroup: u64,
        creative: u64,
        snippet: &str,
        impressions: u64,
        clicks: u64,
    ) -> FeedbackEvent {
        FeedbackEvent {
            adgroup,
            creative,
            snippet: snippet.to_string(),
            position: 1,
            query_class: "travel".to_string(),
            impressions,
            clicks,
        }
    }

    #[test]
    fn corpus_groups_and_sums() {
        let events = vec![
            ev(1, 10, "cheap flights|book now", 500, 40),
            ev(1, 10, "cheap flights|book now", 300, 20),
            ev(1, 11, "flights|terms apply", 800, 10),
            ev(2, 20, "hotel deals|save big", 400, 30),
        ];
        let corpus = corpus_from_events(&events);
        assert_eq!(corpus.adgroups.len(), 2);
        let g1 = &corpus.adgroups[0];
        assert_eq!(g1.id.0, 1);
        assert_eq!(g1.keyword, "travel");
        assert_eq!(g1.creatives.len(), 2);
        assert_eq!(g1.creatives[0].impressions, 800);
        assert_eq!(g1.creatives[0].clicks, 60);
    }

    #[test]
    fn clicks_clamped_to_impressions() {
        let corpus = corpus_from_events(&[ev(1, 10, "a|b", 10, 50)]);
        assert!(corpus.adgroups[0].creatives[0].clicks <= 10);
    }

    #[test]
    fn significant_batch_yields_nonempty_delta() {
        let batch = FeedbackRequest {
            key: "k".to_string(),
            events: vec![
                ev(1, 10, "cheap flights|book now today", 5000, 900),
                ev(1, 11, "flights|standard fare terms", 5000, 100),
            ],
        };
        let delta = delta_from_batch(&batch);
        assert!(!delta.is_empty(), "clear CTR gap must produce increments");
    }

    #[test]
    fn insignificant_batch_yields_empty_delta() {
        let batch = FeedbackRequest {
            key: "k".to_string(),
            events: vec![
                ev(1, 10, "cheap flights|book now", 50, 5),
                ev(1, 11, "flights|terms", 50, 5),
            ],
        };
        assert!(delta_from_batch(&batch).is_empty());
    }
}
