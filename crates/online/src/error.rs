//! Crate-wide error type.

use microbrowse_store::codec::DecodeError;
use microbrowse_store::file::SnapshotError;
use microbrowse_store::SlotError;

/// Errors from the journal, the learner-state codec, or a refit attempt.
#[derive(Debug)]
pub enum OnlineError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// Artifact-slot commit or load failed.
    Slot(SlotError),
    /// A varint / string / record failed to decode.
    Decode(DecodeError),
    /// An embedded stats snapshot failed to decode.
    Snapshot(SnapshotError),
    /// A framed artifact does not begin with the expected magic.
    BadMagic(&'static str),
    /// A framed artifact declares a format version this build does not know.
    UnsupportedVersion {
        /// Which artifact kind ("journal segment", "checkpoint", …).
        kind: &'static str,
        /// The version found in the header.
        version: u32,
    },
    /// A framed artifact's payload checksum does not match its trailer.
    ChecksumMismatch {
        /// Which artifact kind.
        kind: &'static str,
        /// CRC recorded in the trailer.
        expected: u32,
        /// CRC computed over the payload actually read.
        actual: u32,
    },
    /// A framed artifact ended before its declared contents.
    Truncated(&'static str),
    /// A listed journal segment decoded to a different sequence number than
    /// its listing entry — the journal directory is inconsistent.
    SeqMismatch {
        /// Sequence number the listing promised.
        listed: u64,
        /// Sequence number the segment payload carries.
        found: u64,
    },
    /// The accumulated online corpus yields no trainable pairs yet (every
    /// adgroup is below the pair filter's impression or z-score floor).
    NoPairs,
}

impl std::fmt::Display for OnlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OnlineError::Io(e) => write!(f, "online io error: {e}"),
            OnlineError::Slot(e) => write!(f, "online slot error: {e}"),
            OnlineError::Decode(e) => write!(f, "online decode error: {e}"),
            OnlineError::Snapshot(e) => write!(f, "online stats snapshot error: {e}"),
            OnlineError::BadMagic(kind) => write!(f, "not a {kind} (bad magic)"),
            OnlineError::UnsupportedVersion { kind, version } => {
                write!(f, "unsupported {kind} version {version}")
            }
            OnlineError::ChecksumMismatch {
                kind,
                expected,
                actual,
            } => write!(
                f,
                "{kind} corrupt: crc {actual:#010x} != recorded {expected:#010x}"
            ),
            OnlineError::Truncated(kind) => write!(f, "{kind} truncated"),
            OnlineError::SeqMismatch { listed, found } => write!(
                f,
                "journal segment seq mismatch: listing says {listed}, payload says {found}"
            ),
            OnlineError::NoPairs => {
                write!(f, "online corpus has no trainable pairs yet")
            }
        }
    }
}

impl std::error::Error for OnlineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OnlineError::Io(e) => Some(e),
            OnlineError::Slot(e) => Some(e),
            OnlineError::Decode(e) => Some(e),
            OnlineError::Snapshot(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for OnlineError {
    fn from(e: std::io::Error) -> Self {
        OnlineError::Io(e)
    }
}

impl From<SlotError> for OnlineError {
    fn from(e: SlotError) -> Self {
        OnlineError::Slot(e)
    }
}

impl From<DecodeError> for OnlineError {
    fn from(e: DecodeError) -> Self {
        OnlineError::Decode(e)
    }
}

impl From<SnapshotError> for OnlineError {
    fn from(e: SnapshotError) -> Self {
        OnlineError::Snapshot(e)
    }
}
