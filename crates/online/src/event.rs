//! Binary codec for feedback events as they sit in the journal.
//!
//! The wire shapes live in [`microbrowse_api::v1`]; this module gives them
//! the same varint + length-prefixed-string encoding the stats snapshots
//! use, so journal segments are compact and deterministic.

use bytes::{Buf, BufMut};
use microbrowse_api::v1::FeedbackEvent;
use microbrowse_store::codec::{get_str, get_varint, put_str, put_varint, DecodeError};

/// Append one event to `buf`.
pub fn put_event(buf: &mut impl BufMut, ev: &FeedbackEvent) {
    put_varint(buf, ev.adgroup);
    put_varint(buf, ev.creative);
    put_str(buf, &ev.snippet);
    put_varint(buf, ev.position);
    put_str(buf, &ev.query_class);
    put_varint(buf, ev.impressions);
    put_varint(buf, ev.clicks);
}

/// Read one event written by [`put_event`].
pub fn get_event(buf: &mut impl Buf) -> Result<FeedbackEvent, DecodeError> {
    let adgroup = get_varint(buf)?;
    let creative = get_varint(buf)?;
    let snippet = get_str(buf)?;
    let position = get_varint(buf)?;
    let query_class = get_str(buf)?;
    let impressions = get_varint(buf)?;
    let clicks = get_varint(buf)?;
    Ok(FeedbackEvent {
        adgroup,
        creative,
        snippet,
        position,
        query_class,
        impressions,
        clicks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn round_trip() {
        let ev = FeedbackEvent {
            adgroup: 7,
            creative: 300,
            snippet: "cheap flights|book now|fly today".to_string(),
            position: 2,
            query_class: "travel".to_string(),
            impressions: 12_000,
            clicks: 340,
        };
        let mut buf = BytesMut::new();
        put_event(&mut buf, &ev);
        let mut slice = &buf[..];
        assert_eq!(get_event(&mut slice).unwrap(), ev);
        assert!(slice.is_empty());
    }

    #[test]
    fn truncated_event_errors() {
        let ev = FeedbackEvent {
            adgroup: 1,
            creative: 2,
            snippet: "a|b".to_string(),
            position: 1,
            query_class: "c".to_string(),
            impressions: 10,
            clicks: 1,
        };
        let mut buf = BytesMut::new();
        put_event(&mut buf, &ev);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert!(get_event(&mut slice).is_err(), "cut at {cut} should fail");
        }
    }
}
