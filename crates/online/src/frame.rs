//! Shared framing for on-disk online-learning artifacts: 8-byte magic,
//! LE u32 format version, payload, CRC-32 trailer — the same discipline as
//! [`microbrowse_store::file`] snapshots.

use microbrowse_store::crc::crc32;

use crate::error::OnlineError;

/// Wrap `payload` in a magic + version header and a CRC-32 trailer.
pub(crate) fn frame(magic: &[u8; 8], version: u32, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(magic.len() + 4 + payload.len() + 4);
    out.extend_from_slice(magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

/// Validate the frame produced by [`frame`] and return the payload slice.
/// `kind` names the artifact in error messages.
pub(crate) fn unframe<'a>(
    kind: &'static str,
    magic: &[u8; 8],
    version: u32,
    bytes: &'a [u8],
) -> Result<&'a [u8], OnlineError> {
    if bytes.len() < magic.len() + 4 + 4 {
        return Err(OnlineError::Truncated(kind));
    }
    if &bytes[..magic.len()] != magic {
        return Err(OnlineError::BadMagic(kind));
    }
    let mut version_bytes = [0u8; 4];
    version_bytes.copy_from_slice(&bytes[magic.len()..magic.len() + 4]);
    let found = u32::from_le_bytes(version_bytes);
    if found != version {
        return Err(OnlineError::UnsupportedVersion {
            kind,
            version: found,
        });
    }
    let payload = &bytes[magic.len() + 4..bytes.len() - 4];
    let mut trailer = [0u8; 4];
    trailer.copy_from_slice(&bytes[bytes.len() - 4..]);
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(payload);
    if expected != actual {
        return Err(OnlineError::ChecksumMismatch {
            kind,
            expected,
            actual,
        });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: &[u8; 8] = b"MBTEST0\0";

    #[test]
    fn round_trip() {
        let framed = frame(MAGIC, 1, b"hello");
        let payload = unframe("test artifact", MAGIC, 1, &framed).unwrap();
        assert_eq!(payload, b"hello");
    }

    #[test]
    fn rejects_every_corruption() {
        let framed = frame(MAGIC, 1, b"hello");
        assert!(matches!(
            unframe("t", b"MBWRONG\0", 1, &framed),
            Err(OnlineError::BadMagic(_))
        ));
        assert!(matches!(
            unframe("t", MAGIC, 2, &framed),
            Err(OnlineError::UnsupportedVersion { version: 1, .. })
        ));
        let mut flipped = framed.clone();
        let mid = flipped.len() - 6;
        flipped[mid] ^= 0x01;
        assert!(matches!(
            unframe("t", MAGIC, 1, &flipped),
            Err(OnlineError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            unframe("t", MAGIC, 1, &framed[..10]),
            Err(OnlineError::Truncated(_))
        ));
    }
}
