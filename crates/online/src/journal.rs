//! Crash-safe bounded event journal.
//!
//! A journal is a directory holding three kinds of artifact, all framed
//! with magic + version + CRC-32 ([`crate::frame`]) and written with the
//! `store::slot` atomic-write discipline:
//!
//! * **Segments** (`seg-{seq}.mbj`) — one per accepted feedback batch,
//!   written via [`write_atomic`] *before* the listing is updated. A
//!   segment that crashes mid-write is a torn unlisted file and is
//!   ignored on replay.
//! * **Listing** (an [`ArtifactSlot`] named `journal.list`) — the atomic
//!   commit point. Only sequence numbers present in the newest valid
//!   listing generation are replayed; committing the listing *after* the
//!   segment makes append an all-or-nothing operation, so a crash at any
//!   byte offset loses at most the uncommitted tail.
//! * **Checkpoint** (an [`ArtifactSlot`] named `online.ckpt`) — opaque
//!   learner state plus the sequence number up to which it is folded and
//!   the dedupe-key window. After a checkpoint commits, folded segments
//!   are unlisted and deleted, which is what keeps the journal bounded:
//!   replay work is proportional to one refit interval, not to uptime.
//!
//! Idempotency keys are remembered per batch (`key → seq`). A duplicate
//! append is reported, not re-journaled, so an ambiguous client retry of
//! `POST /v1/feedback` is safe. The dedupe window survives restarts: live
//! segment keys are recovered by replay, folded ones ride the checkpoint.

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use bytes::BytesMut;
use microbrowse_api::v1::FeedbackRequest;
use microbrowse_store::codec::{get_str, get_varint, put_str, put_varint};
use microbrowse_store::{write_atomic, ArtifactSlot, SlotError};

use crate::error::OnlineError;
use crate::event::{get_event, put_event};
use crate::frame::{frame, unframe};

const SEGMENT_MAGIC: &[u8; 8] = b"MBJSEG0\0";
const LISTING_MAGIC: &[u8; 8] = b"MBJLST0\0";
const CHECKPOINT_MAGIC: &[u8; 8] = b"MBJCKP0\0";
const VERSION: u32 = 1;

const LISTING_SLOT: &str = "journal.list";
const CHECKPOINT_SLOT: &str = "online.ckpt";

/// Slot generations kept for the listing and checkpoint (current + one
/// rollback target).
const SLOT_KEEP: usize = 2;

/// Maximum idempotency keys remembered. Oldest (lowest-seq) keys are
/// evicted first; a duplicate arriving after eviction is re-accepted,
/// which only double-counts if the client retries across more than this
/// many intervening batches.
const DEDUPE_WINDOW: usize = 4096;

/// Outcome of [`Journal::append`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Append {
    /// The batch was journaled durably under this sequence number.
    Appended {
        /// Sequence number assigned to the batch.
        seq: u64,
    },
    /// The idempotency key was already journaled; nothing was written.
    Duplicate {
        /// Sequence number the original batch got.
        seq: u64,
    },
}

/// What [`Journal::open`] recovered from disk.
#[derive(Debug)]
pub struct Recovery {
    /// Opaque learner state from the newest valid checkpoint, if any.
    pub state: Option<Vec<u8>>,
    /// Journaled batches newer than the checkpoint, in sequence order.
    /// These must be re-absorbed on top of `state`.
    pub batches: Vec<FeedbackRequest>,
}

/// A crash-safe, bounded, deduplicating event journal in one directory.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    listing: ArtifactSlot,
    checkpoint: ArtifactSlot,
    /// Listed live segments (seq ascending), not yet folded into a checkpoint.
    segments: Vec<u64>,
    /// Idempotency window: key → seq of the batch that first carried it.
    dedupe: HashMap<String, u64>,
    next_seq: u64,
}

impl Journal {
    /// Open (or create) the journal at `dir`, replaying whatever a previous
    /// process left behind: the newest valid checkpoint plus every listed
    /// segment newer than it. Torn segments and torn listing generations
    /// are rolled over exactly like torn slot artifacts — at most the
    /// uncommitted tail is lost.
    pub fn open(dir: impl Into<PathBuf>) -> Result<(Journal, Recovery), OnlineError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let listing = ArtifactSlot::new(&dir, LISTING_SLOT);
        let checkpoint = ArtifactSlot::new(&dir, CHECKPOINT_SLOT);

        let listed = match listing.load_with(decode_listing) {
            Ok(load) => load.value,
            Err(SlotError::NoGoodGeneration { tried: 0, .. }) => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let (last_folded, ckpt_dedupe, state) = match checkpoint.load_with(decode_checkpoint) {
            Ok(load) => {
                let (seq, dedupe, state) = load.value;
                (seq, dedupe, Some(state))
            }
            Err(SlotError::NoGoodGeneration { tried: 0, .. }) => (0, Vec::new(), None),
            Err(e) => return Err(e.into()),
        };

        let mut dedupe: HashMap<String, u64> = ckpt_dedupe.into_iter().collect();
        let mut segments = Vec::new();
        let mut batches = Vec::new();
        let mut max_seq = last_folded;
        for seq in listed {
            if seq <= last_folded {
                // Folded into the checkpoint but not yet pruned (crash
                // between checkpoint commit and prune): drop the file.
                let _ = std::fs::remove_file(segment_path(&dir, seq));
                continue;
            }
            let bytes = std::fs::read(segment_path(&dir, seq))?;
            let (found, batch) = decode_segment(&bytes)?;
            if found != seq {
                return Err(OnlineError::SeqMismatch { listed: seq, found });
            }
            dedupe.insert(batch.key.clone(), seq);
            segments.push(seq);
            batches.push(batch);
            max_seq = max_seq.max(seq);
        }
        for &seq in dedupe.values() {
            max_seq = max_seq.max(seq);
        }

        let journal = Journal {
            dir,
            listing,
            checkpoint,
            segments,
            dedupe,
            next_seq: max_seq + 1,
        };
        Ok((journal, Recovery { state, batches }))
    }

    /// Directory this journal lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Number of live (unfolded) segments.
    pub fn live_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of idempotency keys currently remembered.
    pub fn dedupe_window(&self) -> usize {
        self.dedupe.len()
    }

    /// Durably append a batch, or report the duplicate if its idempotency
    /// key is already in the window. On `Appended`, the segment file and
    /// the listing pointing at it are both on disk when this returns.
    pub fn append(&mut self, batch: &FeedbackRequest) -> Result<Append, OnlineError> {
        if let Some(&seq) = self.dedupe.get(&batch.key) {
            return Ok(Append::Duplicate { seq });
        }
        let seq = self.next_seq;
        let bytes = encode_segment(seq, batch);
        write_atomic(&segment_path(&self.dir, seq), &bytes)?;
        self.segments.push(seq);
        self.listing.commit(&encode_listing(&self.segments))?;
        let _ = self.listing.prune(SLOT_KEEP);
        self.dedupe.insert(batch.key.clone(), seq);
        self.trim_dedupe();
        self.next_seq = seq + 1;
        Ok(Append::Appended { seq })
    }

    /// Commit a checkpoint: `state` is opaque learner state that reflects
    /// every batch appended so far. After the checkpoint is durable, live
    /// segments are unlisted and deleted — the journal's bound.
    pub fn commit_checkpoint(&mut self, state: &[u8]) -> Result<(), OnlineError> {
        let last_folded = self.next_seq.saturating_sub(1);
        let payload = encode_checkpoint(last_folded, &self.dedupe, state);
        self.checkpoint.commit(&payload)?;
        let _ = self.checkpoint.prune(SLOT_KEEP);
        // Checkpoint is durable; now shrink the replay window.
        let folded = std::mem::take(&mut self.segments);
        self.listing.commit(&encode_listing(&self.segments))?;
        let _ = self.listing.prune(SLOT_KEEP);
        for seq in folded {
            let _ = std::fs::remove_file(segment_path(&self.dir, seq));
        }
        Ok(())
    }

    fn trim_dedupe(&mut self) {
        if self.dedupe.len() <= DEDUPE_WINDOW {
            return;
        }
        let mut seqs: Vec<u64> = self.dedupe.values().copied().collect();
        seqs.sort_unstable();
        let cutoff = seqs[seqs.len() - DEDUPE_WINDOW];
        self.dedupe.retain(|_, &mut seq| seq >= cutoff);
    }
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("seg-{seq}.mbj"))
}

/// Encode one segment's bytes: framed `{seq, key, events}`. Public so the
/// fault-injection tests can write torn copies of a real segment at every
/// abort offset.
pub fn encode_segment(seq: u64, batch: &FeedbackRequest) -> Vec<u8> {
    let mut payload = BytesMut::new();
    put_varint(&mut payload, seq);
    put_str(&mut payload, &batch.key);
    put_varint(&mut payload, batch.events.len() as u64);
    for ev in &batch.events {
        put_event(&mut payload, ev);
    }
    frame(SEGMENT_MAGIC, VERSION, &payload)
}

/// Decode a segment written by [`encode_segment`].
pub fn decode_segment(bytes: &[u8]) -> Result<(u64, FeedbackRequest), OnlineError> {
    let payload = unframe("journal segment", SEGMENT_MAGIC, VERSION, bytes)?;
    let mut buf = payload;
    let seq = get_varint(&mut buf)?;
    let key = get_str(&mut buf)?;
    let count = get_varint(&mut buf)?;
    let mut events = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        events.push(get_event(&mut buf)?);
    }
    Ok((seq, FeedbackRequest { key, events }))
}

fn encode_listing(segments: &[u64]) -> Vec<u8> {
    let mut payload = BytesMut::new();
    put_varint(&mut payload, segments.len() as u64);
    for &seq in segments {
        put_varint(&mut payload, seq);
    }
    frame(LISTING_MAGIC, VERSION, &payload)
}

fn decode_listing(bytes: &[u8]) -> Result<Vec<u64>, OnlineError> {
    let payload = unframe("journal listing", LISTING_MAGIC, VERSION, bytes)?;
    let mut buf = payload;
    let count = get_varint(&mut buf)?;
    let mut segments = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        segments.push(get_varint(&mut buf)?);
    }
    segments.sort_unstable();
    Ok(segments)
}

fn encode_checkpoint(last_folded: u64, dedupe: &HashMap<String, u64>, state: &[u8]) -> Vec<u8> {
    let mut payload = BytesMut::new();
    put_varint(&mut payload, last_folded);
    // Deterministic order: by (seq, key).
    let mut entries: Vec<(&String, u64)> = dedupe.iter().map(|(k, &v)| (k, v)).collect();
    entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(b.0)));
    put_varint(&mut payload, entries.len() as u64);
    for (key, seq) in entries {
        put_str(&mut payload, key);
        put_varint(&mut payload, seq);
    }
    put_varint(&mut payload, state.len() as u64);
    payload.extend_from_slice(state);
    frame(CHECKPOINT_MAGIC, VERSION, &payload)
}

type CheckpointContents = (u64, Vec<(String, u64)>, Vec<u8>);

fn decode_checkpoint(bytes: &[u8]) -> Result<CheckpointContents, OnlineError> {
    let payload = unframe("journal checkpoint", CHECKPOINT_MAGIC, VERSION, bytes)?;
    let mut buf = payload;
    let last_folded = get_varint(&mut buf)?;
    let count = get_varint(&mut buf)?;
    let mut dedupe = Vec::with_capacity(count.min(1 << 16) as usize);
    for _ in 0..count {
        let key = get_str(&mut buf)?;
        let seq = get_varint(&mut buf)?;
        dedupe.push((key, seq));
    }
    let state_len = get_varint(&mut buf)? as usize;
    if buf.len() < state_len {
        return Err(OnlineError::Truncated("journal checkpoint"));
    }
    let state = buf[..state_len].to_vec();
    Ok((last_folded, dedupe, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use microbrowse_api::v1::FeedbackEvent;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "mb-journal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn batch(key: &str, adgroup: u64) -> FeedbackRequest {
        FeedbackRequest {
            key: key.to_string(),
            events: vec![FeedbackEvent {
                adgroup,
                creative: adgroup * 10,
                snippet: "cheap flights|book now|fly today".to_string(),
                position: 1,
                query_class: "travel".to_string(),
                impressions: 1000,
                clicks: 50,
            }],
        }
    }

    #[test]
    fn append_replay_round_trip() {
        let dir = tmpdir("roundtrip");
        let (mut journal, rec) = Journal::open(&dir).unwrap();
        assert!(rec.state.is_none());
        assert!(rec.batches.is_empty());
        assert_eq!(
            journal.append(&batch("k1", 1)).unwrap(),
            Append::Appended { seq: 1 }
        );
        assert_eq!(
            journal.append(&batch("k2", 2)).unwrap(),
            Append::Appended { seq: 2 }
        );
        drop(journal);

        let (journal, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.batches.len(), 2);
        assert_eq!(rec.batches[0].key, "k1");
        assert_eq!(rec.batches[1].key, "k2");
        assert_eq!(journal.live_segments(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_keys_dedupe_across_restart() {
        let dir = tmpdir("dedupe");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        let first = journal.append(&batch("same", 1)).unwrap();
        assert_eq!(first, Append::Appended { seq: 1 });
        assert_eq!(
            journal.append(&batch("same", 1)).unwrap(),
            Append::Duplicate { seq: 1 }
        );
        drop(journal);
        let (mut journal, _) = Journal::open(&dir).unwrap();
        assert_eq!(
            journal.append(&batch("same", 1)).unwrap(),
            Append::Duplicate { seq: 1 }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_bounds_replay_and_keeps_dedupe() {
        let dir = tmpdir("ckpt");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        journal.append(&batch("k1", 1)).unwrap();
        journal.append(&batch("k2", 2)).unwrap();
        journal.commit_checkpoint(b"learner-state").unwrap();
        assert_eq!(journal.live_segments(), 0);
        journal.append(&batch("k3", 3)).unwrap();
        drop(journal);

        let (mut journal, rec) = Journal::open(&dir).unwrap();
        assert_eq!(rec.state.as_deref(), Some(&b"learner-state"[..]));
        assert_eq!(rec.batches.len(), 1, "only the post-checkpoint tail");
        assert_eq!(rec.batches[0].key, "k3");
        // Folded keys still dedupe.
        assert_eq!(
            journal.append(&batch("k1", 1)).unwrap(),
            Append::Duplicate { seq: 1 }
        );
        // Folded segment files are gone.
        assert!(!segment_path(&dir, 1).exists());
        assert!(!segment_path(&dir, 2).exists());
        assert!(segment_path(&dir, 3).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_numbers_never_reused_after_checkpoint() {
        let dir = tmpdir("seq");
        let (mut journal, _) = Journal::open(&dir).unwrap();
        journal.append(&batch("k1", 1)).unwrap();
        journal.commit_checkpoint(b"s").unwrap();
        drop(journal);
        let (mut journal, _) = Journal::open(&dir).unwrap();
        assert_eq!(
            journal.append(&batch("k2", 2)).unwrap(),
            Append::Appended { seq: 2 }
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
