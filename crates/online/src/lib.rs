//! Online learning subsystem: streaming click ingestion, incremental
//! [`StatsDb`](microbrowse_store::StatsDb) deltas, and live model refresh.
//!
//! The batch pipeline builds the feature-statistics database once from a
//! frozen ad-log corpus; this crate closes the loop for a *live* system.
//! Feedback batches (impression/click events per creative, with position
//! and query class) flow through four stages:
//!
//! ```text
//! POST /v1/feedback            background refitter
//!       |                            |
//!       v                            v
//!  [ journal ]  --replay-->  [ delta fold ]  -->  [ refit ]  --> [ publish ]
//!  crash-safe                 StatsDb::merge      coupled-LR      ArtifactSlot
//!  segments +                 (pure count         final fit       generation;
//!  CRC listing                 increments)                        hot-reload
//! ```
//!
//! * [`journal`] — a bounded on-disk event journal, crash-safe via the
//!   same atomic-write discipline as [`microbrowse_store::slot`]: CRC-framed
//!   append segments, an [`ArtifactSlot`](microbrowse_store::ArtifactSlot)
//!   listing as the atomic commit point, and a checkpoint that bounds
//!   replay to the uncheckpointed tail.
//! * [`delta`] — turns a feedback batch into a [`StatsDb`] of pure count
//!   increments. Laplace-smoothed odds are derived from counts, so deltas
//!   fold into the base database with [`StatsDb::merge`] — exact,
//!   order-independent, no rebuild.
//! * [`posclass`] — per-query-class position weights learned online, the
//!   query-specific position-bias extension of the serving position model.
//! * [`refit`] — [`OnlineLearner`] accumulates deltas plus the online pair
//!   corpus and re-runs the coupled-LR final fit on demand, producing a
//!   [`DeployedModel`](microbrowse_core::serve::DeployedModel) plus folded
//!   stats ready to commit through `ArtifactSlot` for zero-drop hot reload.
//!
//! [`StatsDb`]: microbrowse_store::StatsDb
//! [`StatsDb::merge`]: microbrowse_store::StatsDb::merge

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delta;
mod error;
pub mod event;
mod frame;
pub mod journal;
pub mod posclass;
pub mod refit;

pub use delta::{corpus_from_events, delta_from_batch};
pub use error::OnlineError;
pub use journal::{Append, Journal, Recovery};
pub use posclass::PosClassModel;
pub use refit::{OnlineLearner, RefitOutput};
