//! Per-query-class position weights learned online.
//!
//! The batch position model ties one examination weight to each snippet
//! position across all queries. Following the query-specific position-bias
//! refinement of the examination hypothesis, this model keeps separate
//! click/impression counts per `(query class, SERP position)` cell and
//! reports each cell's Laplace-smoothed log-odds lift relative to its
//! class aggregate — how much more (or less) clickable a position is for
//! that class of queries than the class average.

use std::collections::BTreeMap;

use bytes::BytesMut;
use microbrowse_api::v1::FeedbackEvent;
use microbrowse_store::codec::{get_str, get_varint, put_str, put_varint};

use crate::error::OnlineError;
use crate::frame::{frame, unframe};

const MAGIC: &[u8; 8] = b"MBPOSC0\0";
const VERSION: u32 = 1;

#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Cell {
    clicks: u64,
    impressions: u64,
}

/// Online click/impression counts per `(query class, position)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PosClassModel {
    classes: BTreeMap<String, BTreeMap<u64, Cell>>,
}

impl PosClassModel {
    /// An empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one event's counts into its `(class, position)` cell.
    pub fn observe(&mut self, ev: &FeedbackEvent) {
        let cell = self
            .classes
            .entry(ev.query_class.clone())
            .or_default()
            .entry(ev.position)
            .or_default();
        cell.impressions += ev.impressions;
        cell.clicks += ev.clicks.min(ev.impressions);
    }

    /// Number of query classes with at least one observation.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Total number of `(class, position)` cells.
    pub fn num_cells(&self) -> usize {
        self.classes.values().map(BTreeMap::len).sum()
    }

    /// True when nothing has been observed.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Laplace-smoothed log-odds lift of `position` within `query_class`,
    /// relative to the class aggregate: positive means the position earns
    /// clicks above the class average, negative below. `None` until the
    /// class has at least one observation.
    pub fn weight(&self, query_class: &str, position: u64, alpha: f64) -> Option<f64> {
        let by_pos = self.classes.get(query_class)?;
        let cell = by_pos.get(&position).copied().unwrap_or_default();
        let (mut class_clicks, mut class_imps) = (0u64, 0u64);
        for c in by_pos.values() {
            class_clicks += c.clicks;
            class_imps += c.impressions;
        }
        let odds = |clicks: u64, imps: u64| {
            let down = imps.saturating_sub(clicks);
            ((clicks as f64 + alpha) / (down as f64 + alpha)).ln()
        };
        Some(odds(cell.clicks, cell.impressions) - odds(class_clicks, class_imps))
    }

    /// Serialize (framed, CRC'd, deterministic byte order).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = BytesMut::new();
        put_varint(&mut payload, self.classes.len() as u64);
        for (class, by_pos) in &self.classes {
            put_str(&mut payload, class);
            put_varint(&mut payload, by_pos.len() as u64);
            for (&pos, cell) in by_pos {
                put_varint(&mut payload, pos);
                put_varint(&mut payload, cell.clicks);
                put_varint(&mut payload, cell.impressions);
            }
        }
        frame(MAGIC, VERSION, &payload)
    }

    /// Deserialize bytes produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, OnlineError> {
        let payload = unframe("position-class model", MAGIC, VERSION, bytes)?;
        let mut buf = payload;
        let num_classes = get_varint(&mut buf)?;
        let mut classes = BTreeMap::new();
        for _ in 0..num_classes {
            let class = get_str(&mut buf)?;
            let num_pos = get_varint(&mut buf)?;
            let mut by_pos = BTreeMap::new();
            for _ in 0..num_pos {
                let pos = get_varint(&mut buf)?;
                let clicks = get_varint(&mut buf)?;
                let impressions = get_varint(&mut buf)?;
                by_pos.insert(
                    pos,
                    Cell {
                        clicks,
                        impressions,
                    },
                );
            }
            classes.insert(class, by_pos);
        }
        Ok(PosClassModel { classes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(query_class: &str, position: u64, impressions: u64, clicks: u64) -> FeedbackEvent {
        FeedbackEvent {
            adgroup: 1,
            creative: 1,
            snippet: "a|b".to_string(),
            position,
            query_class: query_class.to_string(),
            impressions,
            clicks,
        }
    }

    #[test]
    fn top_position_earns_positive_lift() {
        let mut m = PosClassModel::new();
        m.observe(&ev("travel", 1, 1000, 200));
        m.observe(&ev("travel", 2, 1000, 50));
        let w1 = m.weight("travel", 1, 1.0).unwrap();
        let w2 = m.weight("travel", 2, 1.0).unwrap();
        assert!(w1 > 0.0, "position 1 beats the class average: {w1}");
        assert!(w2 < 0.0, "position 2 trails the class average: {w2}");
        assert!(m.weight("finance", 1, 1.0).is_none());
    }

    #[test]
    fn classes_are_independent() {
        let mut m = PosClassModel::new();
        m.observe(&ev("travel", 1, 1000, 300));
        m.observe(&ev("travel", 2, 1000, 10));
        m.observe(&ev("finance", 1, 1000, 100));
        m.observe(&ev("finance", 2, 1000, 95));
        let travel_gap = m.weight("travel", 1, 1.0).unwrap() - m.weight("travel", 2, 1.0).unwrap();
        let finance_gap =
            m.weight("finance", 1, 1.0).unwrap() - m.weight("finance", 2, 1.0).unwrap();
        assert!(
            travel_gap > finance_gap + 1.0,
            "per-class bias differs: travel {travel_gap}, finance {finance_gap}"
        );
    }

    #[test]
    fn serialization_round_trips() {
        let mut m = PosClassModel::new();
        m.observe(&ev("travel", 1, 500, 40));
        m.observe(&ev("finance", 3, 200, 5));
        let bytes = m.to_bytes();
        assert_eq!(PosClassModel::from_bytes(&bytes).unwrap(), m);
        assert_eq!(bytes, m.to_bytes(), "deterministic bytes");
    }
}
