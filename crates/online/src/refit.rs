//! The online learner: fold feedback into deltas, accumulate the online
//! pair corpus, and re-run the coupled-LR final fit on demand.
//!
//! [`OnlineLearner`] is the in-memory half of the subsystem. It holds the
//! batch-built base stats plus everything learned since: the folded delta
//! [`StatsDb`], a per-creative impression/click accumulator (the online
//! corpus the refit trains on), and the per-query-class position model.
//! [`OnlineLearner::refit`] mirrors the batch `train` pipeline exactly —
//! featurizer over the *folded* stats (base ⊕ delta), so batch knowledge
//! enters the fit through the stats-derived initial weights, while the
//! logistic refit itself trains on the online pair window.
//!
//! Learner state serializes to opaque bytes ([`OnlineLearner::state_bytes`])
//! that ride the journal checkpoint, so a restart restores the learner
//! without replaying history beyond the uncheckpointed tail.

use std::collections::BTreeMap;

use bytes::BytesMut;
use microbrowse_api::v1::FeedbackRequest;
use microbrowse_core::classifier::TrainConfig;
use microbrowse_core::serve::DeployedModel;
use microbrowse_core::statsbuild::TokenizedCorpus;
use microbrowse_core::{
    AdCorpus, AdGroup, AdGroupId, Creative, CreativeId, Featurizer, ModelSpec, PairFilter,
    Placement, TrainedClassifier,
};
use microbrowse_store::codec::{get_str, get_varint, put_str, put_varint};
use microbrowse_store::{file, StatsDb};

use crate::delta::{delta_from_batch, parse_snippet};
use crate::error::OnlineError;
use crate::frame::{frame, unframe};
use crate::posclass::PosClassModel;

const STATE_MAGIC: &[u8; 8] = b"MBONLS0\0";
const STATE_VERSION: u32 = 1;

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct CreativeAcc {
    snippet: String,
    impressions: u64,
    clicks: u64,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct AdGroupAcc {
    query_class: String,
    creatives: BTreeMap<u64, CreativeAcc>,
}

/// Everything a successful refit publishes.
#[derive(Debug)]
pub struct RefitOutput {
    /// The refit model, ready to commit to the model slot.
    pub model: DeployedModel,
    /// The folded stats (base ⊕ all deltas), ready to commit to the stats
    /// slot so degraded reloads and future featurizers see the increments.
    pub stats: StatsDb,
    /// The per-query-class position model at refit time.
    pub posclass: PosClassModel,
    /// Number of online pairs the final fit trained on.
    pub pairs: usize,
}

/// Accumulates feedback and refits the model on demand.
#[derive(Debug, Clone)]
pub struct OnlineLearner {
    base_stats: StatsDb,
    spec: ModelSpec,
    delta: StatsDb,
    adgroups: BTreeMap<u64, AdGroupAcc>,
    posclass: PosClassModel,
    batches_folded: u64,
    events_folded: u64,
}

impl OnlineLearner {
    /// A learner over the batch-built `base_stats`, refitting variant `spec`.
    pub fn new(base_stats: StatsDb, spec: ModelSpec) -> Self {
        OnlineLearner {
            base_stats,
            spec,
            delta: StatsDb::new(),
            adgroups: BTreeMap::new(),
            posclass: PosClassModel::new(),
            batches_folded: 0,
            events_folded: 0,
        }
    }

    /// Number of feedback batches folded so far.
    pub fn batches_folded(&self) -> u64 {
        self.batches_folded
    }

    /// Number of feedback events folded so far.
    pub fn events_folded(&self) -> u64 {
        self.events_folded
    }

    /// Number of distinct feature keys in the folded delta.
    pub fn delta_features(&self) -> usize {
        self.delta.len()
    }

    /// The per-query-class position model learned so far.
    pub fn posclass(&self) -> &PosClassModel {
        &self.posclass
    }

    /// Fold one feedback batch: delta increments into the delta layer,
    /// raw counts into the online corpus accumulator and position model.
    pub fn absorb(&mut self, batch: &FeedbackRequest) {
        self.delta.merge(delta_from_batch(batch));
        for ev in &batch.events {
            let group = self.adgroups.entry(ev.adgroup).or_default();
            if group.query_class.is_empty() && !ev.query_class.is_empty() {
                group.query_class = ev.query_class.clone();
            }
            let acc = group.creatives.entry(ev.creative).or_default();
            if !ev.snippet.is_empty() {
                acc.snippet = ev.snippet.clone();
            }
            acc.impressions += ev.impressions;
            acc.clicks += ev.clicks.min(ev.impressions);
            self.posclass.observe(ev);
        }
        self.batches_folded += 1;
        self.events_folded += batch.events.len() as u64;
    }

    /// The stats the next generation serves: base ⊕ folded deltas.
    pub fn folded_stats(&self) -> StatsDb {
        let mut folded = self.base_stats.clone();
        folded.merge(self.delta.clone());
        folded
    }

    /// The online pair corpus accumulated so far, in deterministic order.
    pub fn online_corpus(&self) -> AdCorpus {
        let adgroups = self
            .adgroups
            .iter()
            .map(|(&id, group)| AdGroup {
                id: AdGroupId(id),
                keyword: group.query_class.clone(),
                placement: Placement::Top,
                creatives: group
                    .creatives
                    .iter()
                    .map(|(&cid, acc)| Creative {
                        id: CreativeId(cid),
                        snippet: parse_snippet(&acc.snippet),
                        impressions: acc.impressions,
                        clicks: acc.clicks.min(acc.impressions),
                    })
                    .collect(),
            })
            .collect();
        AdCorpus { adgroups }
    }

    /// Re-run the coupled-LR final fit over the online pair window, with
    /// initial weights derived from the folded stats. Deterministic for a
    /// given learner state. Errors with [`OnlineError::NoPairs`] until the
    /// accumulator holds at least one significant pair.
    pub fn refit(&self) -> Result<RefitOutput, OnlineError> {
        let corpus = self.online_corpus();
        let pairs = corpus.extract_pairs(&PairFilter::default());
        if pairs.is_empty() {
            return Err(OnlineError::NoPairs);
        }
        let mut span = microbrowse_obs::trace::span("online.refit")
            .with("batches", self.batches_folded)
            .with("events", self.events_folded);
        span.add("pairs", pairs.len());

        let tc = TokenizedCorpus::build(&corpus);
        let stats = self.folded_stats();
        let cfg = TrainConfig::default();
        let mut interner = tc.interner.clone();
        let mut featurizer = Featurizer::new(self.spec, &stats);
        let tok_pairs: Vec<_> = pairs
            .iter()
            .map(|p| (tc.snippet(p.r).clone(), tc.snippet(p.s).clone(), p.r_better))
            .collect();
        let data = featurizer.encode_batch(&tok_pairs, &mut interner);
        let mut init_terms =
            featurizer.init_term_weights(&interner, cfg.stats_alpha, cfg.init_min_support);
        for w in &mut init_terms {
            *w *= cfg.init_scale;
        }
        let init_pos = featurizer.init_pos_weights(cfg.stats_alpha);
        let classifier =
            TrainedClassifier::train(&self.spec, &data, Some(init_terms), Some(init_pos), &cfg);
        let vocab = featurizer.export_vocab(&interner);
        Ok(RefitOutput {
            model: DeployedModel {
                spec: self.spec,
                classifier,
                vocab,
            },
            stats,
            posclass: self.posclass.clone(),
            pairs: tok_pairs.len(),
        })
    }

    /// Serialize the learned state (delta, accumulator, position model,
    /// counters) — *not* the base stats or spec, which the caller restores
    /// from the artifact slots. Deterministic bytes for a given state.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut payload = BytesMut::new();
        put_varint(&mut payload, self.batches_folded);
        put_varint(&mut payload, self.events_folded);
        let delta_bytes = file::to_bytes(&self.delta);
        put_varint(&mut payload, delta_bytes.len() as u64);
        payload.extend_from_slice(&delta_bytes);
        put_varint(&mut payload, self.adgroups.len() as u64);
        for (&id, group) in &self.adgroups {
            put_varint(&mut payload, id);
            put_str(&mut payload, &group.query_class);
            put_varint(&mut payload, group.creatives.len() as u64);
            for (&cid, acc) in &group.creatives {
                put_varint(&mut payload, cid);
                put_str(&mut payload, &acc.snippet);
                put_varint(&mut payload, acc.impressions);
                put_varint(&mut payload, acc.clicks);
            }
        }
        let pos_bytes = self.posclass.to_bytes();
        put_varint(&mut payload, pos_bytes.len() as u64);
        payload.extend_from_slice(&pos_bytes);
        frame(STATE_MAGIC, STATE_VERSION, &payload)
    }

    /// Replace this learner's learned state with bytes from
    /// [`Self::state_bytes`] (base stats and spec are kept as constructed).
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), OnlineError> {
        let payload = unframe("learner state", STATE_MAGIC, STATE_VERSION, bytes)?;
        let mut buf = payload;
        let batches_folded = get_varint(&mut buf)?;
        let events_folded = get_varint(&mut buf)?;
        let delta_len = get_varint(&mut buf)? as usize;
        if buf.len() < delta_len {
            return Err(OnlineError::Truncated("learner state"));
        }
        let delta = file::from_bytes(&buf[..delta_len])?;
        buf = &buf[delta_len..];
        let num_groups = get_varint(&mut buf)?;
        let mut adgroups = BTreeMap::new();
        for _ in 0..num_groups {
            let id = get_varint(&mut buf)?;
            let query_class = get_str(&mut buf)?;
            let num_creatives = get_varint(&mut buf)?;
            let mut creatives = BTreeMap::new();
            for _ in 0..num_creatives {
                let cid = get_varint(&mut buf)?;
                let snippet = get_str(&mut buf)?;
                let impressions = get_varint(&mut buf)?;
                let clicks = get_varint(&mut buf)?;
                creatives.insert(
                    cid,
                    CreativeAcc {
                        snippet,
                        impressions,
                        clicks,
                    },
                );
            }
            adgroups.insert(
                id,
                AdGroupAcc {
                    query_class,
                    creatives,
                },
            );
        }
        let pos_len = get_varint(&mut buf)? as usize;
        if buf.len() < pos_len {
            return Err(OnlineError::Truncated("learner state"));
        }
        let posclass = PosClassModel::from_bytes(&buf[..pos_len])?;

        self.delta = delta;
        self.adgroups = adgroups;
        self.posclass = posclass;
        self.batches_folded = batches_folded;
        self.events_folded = events_folded;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microbrowse_api::v1::FeedbackEvent;

    fn ev(
        adgroup: u64,
        creative: u64,
        snippet: &str,
        impressions: u64,
        clicks: u64,
    ) -> FeedbackEvent {
        FeedbackEvent {
            adgroup,
            creative,
            snippet: snippet.to_string(),
            position: 1 + creative % 3,
            query_class: "travel".to_string(),
            impressions,
            clicks,
        }
    }

    fn batch(key: &str, adgroup: u64) -> FeedbackRequest {
        FeedbackRequest {
            key: key.to_string(),
            events: vec![
                ev(
                    adgroup,
                    adgroup * 10,
                    "cheap flights|book now today",
                    4000,
                    700,
                ),
                ev(
                    adgroup,
                    adgroup * 10 + 1,
                    "flights|standard fare terms",
                    4000,
                    90,
                ),
            ],
        }
    }

    #[test]
    fn state_round_trips_exactly() {
        let mut learner = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
        learner.absorb(&batch("k1", 1));
        learner.absorb(&batch("k2", 2));
        let bytes = learner.state_bytes();
        let mut restored = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
        restored.restore_state(&bytes).unwrap();
        assert_eq!(restored.batches_folded(), 2);
        assert_eq!(restored.events_folded(), 4);
        assert_eq!(restored.state_bytes(), bytes, "deterministic bytes");
        assert_eq!(
            restored.folded_stats().sorted_records(),
            learner.folded_stats().sorted_records()
        );
    }

    #[test]
    fn refit_errors_until_pairs_exist() {
        let learner = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
        assert!(matches!(learner.refit(), Err(OnlineError::NoPairs)));
    }

    #[test]
    fn refit_produces_model_after_feedback() {
        let mut learner = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
        for g in 1..=4 {
            learner.absorb(&batch(&format!("k{g}"), g));
        }
        let out = learner.refit().unwrap();
        assert!(out.pairs >= 1);
        assert!(!out.model.vocab.is_empty());
        assert!(!out.stats.is_empty());
        assert_eq!(out.posclass.num_classes(), 1);
    }
}
