//! Fault-injection: kill the journal writer at every byte offset and
//! prove recovery never loses an acknowledged batch, never resurrects an
//! unacknowledged one, and keeps accepting appends afterwards.
//!
//! The journal's crash contract has two write points:
//!
//! 1. the segment file (written atomically *before* the listing commit) —
//!    a crash here leaves a torn, unlisted file that replay must ignore;
//! 2. the listing generation (the commit point) — a torn newest
//!    generation must roll back to the previous one, exactly like any
//!    other slot artifact.

use std::path::PathBuf;

use microbrowse_api::v1::{FeedbackEvent, FeedbackRequest};
use microbrowse_faultinject::write_killed_at;
use microbrowse_online::{journal::encode_segment, Append, Journal};
use microbrowse_store::ArtifactSlot;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mb-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn batch(key: &str, adgroup: u64) -> FeedbackRequest {
    FeedbackRequest {
        key: key.to_string(),
        events: vec![FeedbackEvent {
            adgroup,
            creative: adgroup * 10,
            snippet: "cheap flights | book now | fly today".to_string(),
            position: 0,
            query_class: "travel".to_string(),
            impressions: 1000,
            clicks: 50,
        }],
    }
}

/// Replay keys after a fresh open.
fn replay_keys(dir: &PathBuf) -> Vec<String> {
    let (_, rec) = Journal::open(dir).expect("journal reopens");
    rec.batches.iter().map(|b| b.key.clone()).collect()
}

#[test]
fn torn_segment_write_at_every_offset_is_invisible() {
    let dir = tmpdir("segment");
    let (mut journal, _) = Journal::open(&dir).unwrap();
    journal.append(&batch("k1", 1)).unwrap();
    journal.append(&batch("k2", 2)).unwrap();
    drop(journal);

    // The writer dies while writing the *next* segment (seq 3), before the
    // listing could commit. write_killed_at leaves the partial prefix in
    // place of the final file — a strictly worse failure than the real
    // append path (which writes a temp file first), so surviving it proves
    // the listing really is the commit point.
    let seg3 = dir.join("seg-3.mbj");
    let bytes = encode_segment(3, &batch("k3", 3));
    for abort_at in 0..bytes.len() {
        write_killed_at(&seg3, &bytes, abort_at).expect("faulty write ran");
        assert_eq!(
            replay_keys(&dir),
            ["k1", "k2"],
            "torn segment (cut at byte {abort_at}/{}) must be ignored",
            bytes.len()
        );
    }
    let _ = std::fs::remove_file(&seg3);

    // The next real append recovers cleanly and reuses the orphaned seq.
    let (mut journal, rec) = Journal::open(&dir).unwrap();
    assert_eq!(rec.batches.len(), 2);
    assert_eq!(
        journal.append(&batch("k3", 3)).unwrap(),
        Append::Appended { seq: 3 }
    );
    drop(journal);
    assert_eq!(replay_keys(&dir), ["k1", "k2", "k3"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_listing_generation_rolls_back_at_every_offset() {
    let dir = tmpdir("listing");
    let (mut journal, _) = Journal::open(&dir).unwrap();
    journal.append(&batch("k1", 1)).unwrap();
    journal.append(&batch("k2", 2)).unwrap();
    journal.append(&batch("k3", 3)).unwrap();
    drop(journal);

    // Tear the newest listing generation (the one listing [1,2,3]) at
    // every offset: the loader must roll back to the previous generation,
    // which lists [1,2] — batch k3 was mid-acknowledgement, so losing it
    // is the allowed outcome; losing k1/k2 never is.
    let listing = ArtifactSlot::new(&dir, "journal.list");
    let generation = listing
        .manifest_generation()
        .expect("listing has generations");
    let gen_path = dir.join(format!("journal.list.gen-{generation}"));
    let good = std::fs::read(&gen_path).expect("read listing generation");
    for abort_at in 0..good.len() {
        write_killed_at(&gen_path, &good, abort_at).expect("faulty write ran");
        assert_eq!(
            replay_keys(&dir),
            ["k1", "k2"],
            "torn listing (cut at byte {abort_at}/{}) must roll back",
            good.len()
        );
    }

    // Restore the full generation: everything is back.
    std::fs::write(&gen_path, &good).expect("restore listing");
    assert_eq!(replay_keys(&dir), ["k1", "k2", "k3"]);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn recovery_after_rollback_keeps_accepting_and_deduping() {
    let dir = tmpdir("resume");
    let (mut journal, _) = Journal::open(&dir).unwrap();
    journal.append(&batch("k1", 1)).unwrap();
    journal.append(&batch("k2", 2)).unwrap();
    drop(journal);

    // Crash mid-append of k3 (torn unlisted segment).
    let bytes = encode_segment(3, &batch("k3", 3));
    write_killed_at(&dir.join("seg-3.mbj"), &bytes, bytes.len() / 2).expect("faulty write");

    let (mut journal, rec) = Journal::open(&dir).unwrap();
    assert_eq!(rec.batches.len(), 2, "torn tail dropped");
    // The torn batch was never acknowledged, so its key must NOT dedupe:
    // the client's retry has to be accepted as a fresh append.
    assert_eq!(
        journal.append(&batch("k3", 3)).unwrap(),
        Append::Appended { seq: 3 }
    );
    // ...and established keys still dedupe.
    assert_eq!(
        journal.append(&batch("k1", 1)).unwrap(),
        Append::Duplicate { seq: 1 }
    );
    // A checkpoint bounds the replay window even after the crash.
    journal.commit_checkpoint(b"state-after-crash").unwrap();
    drop(journal);
    let (_, rec) = Journal::open(&dir).unwrap();
    assert_eq!(rec.state.as_deref(), Some(&b"state-after-crash"[..]));
    assert!(rec.batches.is_empty());
    std::fs::remove_dir_all(&dir).unwrap();
}
