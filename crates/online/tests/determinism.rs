//! Delta folding is exact: counts are associative and commutative, so the
//! order in which feedback batches are folded — one at a time as they
//! arrive, or all at once on replay — can never change the statistics,
//! and therefore never change the refit model's scores. This is the
//! property that makes crash recovery safe: a replayed journal folds the
//! same batches in the same aggregate, regardless of how the original
//! process interleaved them with refits.

use microbrowse_api::v1::{FeedbackEvent, FeedbackRequest};
use microbrowse_core::serve::{Fidelity, Scorer};
use microbrowse_core::ModelSpec;
use microbrowse_online::{delta_from_batch, OnlineLearner};
use microbrowse_store::StatsDb;
use microbrowse_text::Snippet;
use proptest::prelude::*;

/// A small shared vocabulary so random batches collide on features (the
/// interesting case for merge).
const TEXTS: &[&str] = &[
    "cheap flights | book today | trusted airline",
    "cheap flights | pay at gate | trusted airline",
    "best hotels | free cancellation | city centre",
    "best hotels | no refunds | city centre",
    "running shoes | free shipping | all sizes",
    "running shoes | 2-day delivery | all sizes",
    "car insurance | get a free quote | save 20%",
    "car insurance | call an agent | save 20%",
];

const CLASSES: &[&str] = &["travel", "shoes", "insurance"];

fn event_strategy() -> impl Strategy<Value = FeedbackEvent> {
    (
        0u64..6,
        0u64..4,
        0usize..TEXTS.len(),
        0usize..CLASSES.len(),
        500u64..5000,
        0u64..95,
    )
        .prop_map(|(g, c, t, q, impressions, ctr_pct)| FeedbackEvent {
            adgroup: g,
            creative: g * 16 + c,
            snippet: TEXTS[t].to_string(),
            position: c,
            query_class: CLASSES[q].to_string(),
            impressions,
            clicks: impressions * ctr_pct / 100,
        })
}

proptest! {
    /// Fold N batch deltas one at a time vs pre-merged all at once (in
    /// reverse order, for good measure): the resulting statistics must be
    /// bit-identical, down to every count of every feature record.
    #[test]
    fn fold_order_never_changes_the_counts(
        batches in proptest::collection::vec(
            proptest::collection::vec(event_strategy(), 1..12),
            1..8,
        ),
    ) {
        let reqs: Vec<FeedbackRequest> = batches
            .into_iter()
            .enumerate()
            .map(|(i, events)| FeedbackRequest { key: format!("k{i}"), events })
            .collect();

        // One at a time, arrival order.
        let mut one = StatsDb::new();
        for r in &reqs {
            one.merge(delta_from_batch(r));
        }
        // All at once: pre-merge every delta (reversed), fold the
        // aggregate in a single merge.
        let mut all = StatsDb::new();
        for r in reqs.iter().rev() {
            all.merge(delta_from_batch(r));
        }
        let mut folded = StatsDb::new();
        folded.merge(all);

        prop_assert_eq!(one.sorted_records(), folded.sorted_records());

        // The learner's fold obeys the same law: absorb order is invisible
        // in the folded statistics.
        let mut fwd = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
        let mut rev = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
        for r in &reqs {
            fwd.absorb(r);
        }
        for r in reqs.iter().rev() {
            rev.absorb(r);
        }
        prop_assert_eq!(
            fwd.folded_stats().sorted_records(),
            rev.folded_stats().sorted_records()
        );
    }
}

/// Batches with unambiguous CTR gaps, so the refit has significant pairs
/// to train on.
fn strong_signal_batches() -> Vec<FeedbackRequest> {
    let classes = ["travel", "shoes"];
    let winners = [
        ("book today", "pay at gate"),
        ("free shipping", "no refunds"),
        ("free cancellation", "call an agent"),
        ("get a free quote", "2-day delivery"),
    ];
    (0..8u64)
        .map(|g| {
            let (win, lose) = winners[(g % 4) as usize];
            let events = vec![
                FeedbackEvent {
                    adgroup: g,
                    creative: g * 10,
                    snippet: format!("brand store | {win} | all sizes"),
                    position: 0,
                    query_class: classes[(g % 2) as usize].to_string(),
                    impressions: 5000,
                    clicks: 900,
                },
                FeedbackEvent {
                    adgroup: g,
                    creative: g * 10 + 1,
                    snippet: format!("brand store | {lose} | all sizes"),
                    position: 1,
                    query_class: classes[(g % 2) as usize].to_string(),
                    impressions: 5000,
                    clicks: 100,
                },
            ];
            FeedbackRequest {
                key: format!("batch-{g}"),
                events,
            }
        })
        .collect()
}

/// Beyond the counts: two learners that saw the same batches in opposite
/// orders must refit to models that score identically, bit for bit.
#[test]
fn absorb_order_does_not_change_post_refit_scores() {
    let reqs = strong_signal_batches();
    let mut fwd = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
    let mut rev = OnlineLearner::new(StatsDb::new(), ModelSpec::m4());
    for r in &reqs {
        fwd.absorb(r);
    }
    for r in reqs.iter().rev() {
        rev.absorb(r);
    }
    let out_fwd = fwd.refit().expect("forward refit");
    let out_rev = rev.refit().expect("reverse refit");
    assert!(out_fwd.pairs > 0, "signal batches must produce pairs");
    assert_eq!(out_fwd.pairs, out_rev.pairs);
    assert_eq!(
        out_fwd.stats.sorted_records(),
        out_rev.stats.sorted_records(),
        "folded statistics must be bit-identical"
    );

    let snip = |text: &str| Snippet::from_lines(text.split('|').map(str::trim));
    let pairs: Vec<(Snippet, Snippet)> =
        TEXTS.chunks(2).map(|c| (snip(c[0]), snip(c[1]))).collect();
    let scorer_fwd = Scorer::with_fidelity(&out_fwd.model, &out_fwd.stats, Fidelity::Full);
    let scorer_rev = Scorer::with_fidelity(&out_rev.model, &out_rev.stats, Fidelity::Full);
    let scores_fwd = scorer_fwd.score_batch(&pairs, &mut scorer_fwd.scratch());
    let scores_rev = scorer_rev.score_batch(&pairs, &mut scorer_rev.scratch());
    for (i, (a, b)) in scores_fwd.iter().zip(&scores_rev).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "post-refit score diverged at pair {i}: {a} vs {b}"
        );
    }
}
