//! Scoped deterministic parallelism for the experiment engine.
//!
//! Everything here is built on `std::thread::scope` — no external runtime.
//! The contract shared by all entry points: **results are identical to the
//! serial computation at any thread count.** [`par_map`] / [`par_map_with`]
//! guarantee this structurally (results are collected by input index), so a
//! caller only needs its per-item closure to be a pure function of the item
//! for end-to-end determinism. Work is distributed by atomic index stealing,
//! which keeps threads busy under skewed per-item cost (featurization and
//! fold training both are).
//!
//! Thread-count resolution ([`resolve_threads`]) is shared by every knob in
//! the workspace: explicit config beats the `MICROBROWSE_THREADS`
//! environment variable beats detected parallelism.
//!
//! Every parallel entry point captures the caller's trace context
//! (`microbrowse-obs`) before spawning and re-enters it on each worker, so
//! spans recorded inside worker closures nest under the span that launched
//! the parallel section. When instrumentation is disabled this costs one
//! relaxed atomic load per spawn.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Environment variable consulted when a thread count of 0 (auto) is given.
pub const THREADS_ENV: &str = "MICROBROWSE_THREADS";

/// Resolve a requested worker count: explicit `requested > 0` wins, then a
/// positive `MICROBROWSE_THREADS`, then `std::thread::available_parallelism`.
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        return requested;
    }
    if let Ok(v) = std::env::var(THREADS_ENV) {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

/// Map `f` over `items` on up to `threads` workers, returning results in
/// input order. `f` receives the item index alongside the item.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_with(items, threads, || (), |(), i, item| f(i, item))
}

/// [`par_map`] with per-worker scratch state: `init` runs once on each
/// worker thread (e.g. to clone an interner) and the state is threaded
/// through that worker's calls. Results are returned in input order
/// regardless of which worker produced them.
pub fn par_map_with<T, R, S, I, F>(items: &[T], threads: usize, init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize, &T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        let mut state = init();
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(&mut state, i, item))
            .collect();
    }

    let ctx = microbrowse_obs::trace::current_context();
    let next = AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, R)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _obs = ctx.enter();
                    let mut state = init();
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&mut state, i, &items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("par_map worker panicked"))
            .collect()
    });

    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "index {i} produced twice");
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| s.expect("par_map missed an index"))
        .collect()
}

/// Split `items` into at most `threads` contiguous chunks and run `f` on
/// each concurrently. For side-effecting scans (e.g. recording into a
/// sharded builder); per-worker state belongs inside `f`, which runs once
/// per chunk.
pub fn for_each_chunk<T, F>(items: &[T], threads: usize, f: F)
where
    T: Sync,
    F: Fn(&[T]) + Sync,
{
    if items.is_empty() {
        return;
    }
    if threads <= 1 || items.len() == 1 {
        f(items);
        return;
    }
    let ctx = microbrowse_obs::trace::current_context();
    let chunk = items.len().div_ceil(threads).max(1);
    let f = &f;
    std::thread::scope(|scope| {
        for slice in items.chunks(chunk) {
            scope.spawn(move || {
                let _obs = ctx.enter();
                f(slice);
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_serial_at_any_thread_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [0, 1, 2, 3, 8, 64] {
            let par = par_map(&items, threads, |_, &x| x * x + 1);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn map_with_reuses_worker_state() {
        let items: Vec<usize> = (0..100).collect();
        let inits = AtomicUsize::new(0);
        let out = par_map_with(
            &items,
            4,
            || {
                inits.fetch_add(1, Ordering::Relaxed);
                Vec::<usize>::new()
            },
            |scratch, i, &x| {
                scratch.push(x);
                i + x
            },
        );
        assert_eq!(out, items.iter().map(|&x| 2 * x).collect::<Vec<_>>());
        assert!(
            inits.load(Ordering::Relaxed) <= 4,
            "one init per worker at most"
        );
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out: Vec<u32> = par_map(&[] as &[u32], 8, |_, &x| x);
        assert!(out.is_empty());
        for_each_chunk(&[] as &[u32], 8, |_| panic!("must not be called"));
    }

    #[test]
    fn chunks_cover_all_items_exactly_once() {
        let items: Vec<usize> = (0..1000).collect();
        for threads in [1, 2, 7, 16] {
            let sum = AtomicUsize::new(0);
            let calls = AtomicUsize::new(0);
            for_each_chunk(&items, threads, |slice| {
                calls.fetch_add(1, Ordering::Relaxed);
                sum.fetch_add(slice.iter().sum::<usize>(), Ordering::Relaxed);
            });
            assert_eq!(
                sum.load(Ordering::Relaxed),
                1000 * 999 / 2,
                "threads = {threads}"
            );
            assert!(calls.load(Ordering::Relaxed) <= threads);
        }
    }

    #[test]
    fn resolve_threads_prefers_explicit() {
        assert_eq!(resolve_threads(3), 3);
        assert!(resolve_threads(0) >= 1);
    }

    // Tests below touch the process-global obs state (sink + enabled
    // flag) and must not interleave: each takes this lock first.
    static OBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn obs_exclusive() -> std::sync::MutexGuard<'static, ()> {
        OBS_LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn trace_context_flows_into_workers() {
        use microbrowse_obs::trace;
        let _x = obs_exclusive();
        let sink = std::sync::Arc::new(trace::MemorySink::new());
        trace::install_sink(sink.clone());
        microbrowse_obs::set_enabled(true);
        let items: Vec<u64> = (0..64).collect();
        let root_id = {
            let root = trace::span("par.root");
            let out = par_map(&items, 4, |_, &x| {
                let _s = trace::span("par.item");
                x + 1
            });
            assert_eq!(out.len(), 64);
            for_each_chunk(&items, 4, |slice| {
                let _s = trace::span("par.chunk");
                std::hint::black_box(slice.len());
            });
            root.id()
        };
        microbrowse_obs::set_enabled(false);
        trace::clear_sink();
        let item_spans = sink.spans_named("par.item");
        assert_eq!(item_spans.len(), 64);
        assert!(item_spans.iter().all(|s| s.parent == root_id));
        let chunk_spans = sink.spans_named("par.chunk");
        assert!(!chunk_spans.is_empty());
        assert!(chunk_spans.iter().all(|s| s.parent == root_id));
    }

    /// Run the nested handoff a server worker performs: a spawned thread
    /// adopts a wire trace context (trace id + remote parent span), opens
    /// its own request span, and fans work out through a scoped par pool.
    /// Returns (request span id, item span ids' parents checked) via
    /// assertions against the captured sink.
    fn nested_handoff(trace_id: u128, remote_parent: u64, items: usize, threads: usize) {
        use microbrowse_obs::trace;
        let sink = std::sync::Arc::new(trace::MemorySink::new());
        trace::install_sink(sink.clone());
        microbrowse_obs::set_enabled(true);
        let data: Vec<u64> = (0..items as u64).collect();
        // The "server worker": a separate thread, as in the real pool.
        let request_id = std::thread::spawn(move || {
            let _ctx = trace::TraceContext::from_wire(trace_id, remote_parent, false).enter();
            let request = trace::span("test.request");
            let id = request.id();
            let out = par_map(&data, threads, |_, &x| {
                let _s = trace::span("test.item");
                x
            });
            assert_eq!(out.len(), data.len());
            id
        })
        .join()
        .expect("worker thread");
        microbrowse_obs::set_enabled(false);
        trace::clear_sink();

        let request_spans = sink.spans_named("test.request");
        assert_eq!(request_spans.len(), 1);
        assert_eq!(request_spans[0].parent, remote_parent);
        assert_eq!(request_spans[0].trace, trace_id);
        let item_spans = sink.spans_named("test.item");
        assert_eq!(item_spans.len(), items);
        for s in &item_spans {
            assert_eq!(s.parent, request_id, "item span nests under request");
            assert_eq!(s.trace, trace_id, "one trace id across both pools");
            assert_ne!(s.id, request_id, "child spans get their own ids");
        }
    }

    #[test]
    fn nested_pools_share_one_trace_id() {
        let _x = obs_exclusive();
        nested_handoff(0xfeed_beef, 77, 32, 4);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]
        /// The handoff invariants hold at any pool size, including the
        /// serial fast path (threads <= 1) that never spawns.
        #[test]
        fn nested_handoff_holds_for_any_pool_size(
            threads in 1usize..9,
            items in 1usize..40,
            trace_lo in 1u64..u64::MAX,
            trace_hi in 0u64..u64::MAX,
        ) {
            let _x = obs_exclusive();
            let trace = (u128::from(trace_hi) << 64) | u128::from(trace_lo);
            nested_handoff(trace, 5, items, threads);
        }
    }
}
