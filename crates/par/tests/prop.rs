//! Property tests: the par-map combinators must behave exactly like their
//! serial counterparts for every input shape and thread count.

use proptest::prelude::*;

proptest! {
    /// `par_map` returns results in input order — equal to a serial `map` —
    /// for any item count and any thread count (including 0 = auto and
    /// counts far above the item count).
    #[test]
    fn par_map_preserves_order(
        items in prop::collection::vec(any::<u64>(), 0..200),
        threads in 0usize..9,
    ) {
        let expected: Vec<(usize, u64)> =
            items.iter().enumerate().map(|(i, &x)| (i, x.wrapping_mul(31))).collect();
        let got = microbrowse_par::par_map(&items, threads, |i, &x| (i, x.wrapping_mul(31)));
        prop_assert_eq!(got, expected);
    }

    /// `for_each_chunk` visits every item exactly once across all chunks.
    #[test]
    fn for_each_chunk_covers_all_items(
        items in prop::collection::vec(any::<u32>(), 0..200),
        threads in 0usize..9,
    ) {
        use std::sync::Mutex;
        let seen = Mutex::new(Vec::new());
        microbrowse_par::for_each_chunk(&items, threads, |chunk| {
            seen.lock().unwrap().extend_from_slice(chunk);
        });
        let mut got = seen.into_inner().unwrap();
        let mut expected = items.clone();
        got.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
