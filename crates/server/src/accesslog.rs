//! Recent-request access log: a bounded in-memory ring powering
//! `GET /debug/requests`, plus optional one-line-per-request stderr
//! logging (`--access-log`).
//!
//! Every served request — including sheds that never reached a worker —
//! pushes one [`AccessRecord`] carrying the method, path, status, trace
//! id, and the per-stage budget breakdown (queue / parse / score / write,
//! microseconds). The ring is a `Mutex<VecDeque>`: pushes are one short
//! uncontended lock on the worker thread, far from the scoring hot loop.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

use microbrowse_obs::trace::format_trace_id;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One completed request, as remembered by the access log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessRecord {
    /// Request method (`"-"` when the request was never parsed).
    pub method: String,
    /// Request path, query stripped (`"-"` when never parsed).
    pub path: String,
    /// Response status.
    pub status: u16,
    /// 128-bit trace id of the request.
    pub trace: u128,
    /// Queue wait in microseconds (accept → worker dequeue).
    pub queue_us: u64,
    /// Request read + parse in microseconds.
    pub parse_us: u64,
    /// Handler / scoring time in microseconds.
    pub score_us: u64,
    /// Response write time in microseconds.
    pub write_us: u64,
}

impl AccessRecord {
    /// Total latency: the sum of the stage times.
    pub fn total_us(&self) -> u64 {
        self.queue_us
            .saturating_add(self.parse_us)
            .saturating_add(self.score_us)
            .saturating_add(self.write_us)
    }
}

/// Bounded ring of recent [`AccessRecord`]s, oldest evicted first.
pub struct AccessLog {
    ring: Mutex<VecDeque<AccessRecord>>,
    cap: usize,
    stderr: bool,
}

impl AccessLog {
    /// A ring holding at most `cap` records (clamped to at least 1).
    /// When `stderr` is set, every push also writes one log line.
    pub fn new(cap: usize, stderr: bool) -> Self {
        Self {
            ring: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
            stderr,
        }
    }

    /// Record one completed request.
    pub fn push(&self, record: AccessRecord) {
        if self.stderr {
            eprintln!(
                "access {} {} {} trace={} total_us={} queue_us={} parse_us={} score_us={} write_us={}",
                record.method,
                record.path,
                record.status,
                format_trace_id(record.trace),
                record.total_us(),
                record.queue_us,
                record.parse_us,
                record.score_us,
                record.write_us,
            );
        }
        let mut ring = lock(&self.ring);
        if ring.len() == self.cap {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// The `n` most recent records, newest first.
    pub fn recent(&self, n: usize) -> Vec<AccessRecord> {
        lock(&self.ring).iter().rev().take(n).cloned().collect()
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        lock(&self.ring).len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        lock(&self.ring).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(status: u16) -> AccessRecord {
        AccessRecord {
            method: "POST".to_owned(),
            path: "/v1/score".to_owned(),
            status,
            trace: u128::from(status),
            queue_us: 1,
            parse_us: 2,
            score_us: 3,
            write_us: 4,
        }
    }

    #[test]
    fn ring_is_bounded_and_newest_first() {
        let log = AccessLog::new(2, false);
        assert!(log.is_empty());
        for status in [200u16, 201, 202] {
            log.push(record(status));
        }
        assert_eq!(log.len(), 2);
        let recent = log.recent(10);
        assert_eq!(recent[0].status, 202);
        assert_eq!(recent[1].status, 201);
        assert_eq!(log.recent(1).len(), 1);
        assert_eq!(recent[0].total_us(), 10);
    }
}
