//! Server smoke gate (wired into `scripts/check.sh`).
//!
//! Exercises the full `microbrowse serve` lifecycle against the real CLI
//! binary:
//!
//! 1. train artifacts into a slot directory;
//! 2. start `microbrowse serve` on an ephemeral port with online feedback
//!    enabled (`--feedback-journal`, 1-second refit cadence);
//! 3. hit `/v1/score`, `/healthz`, `/metrics`;
//! 4. under sustained multi-threaded load, commit a new slot generation
//!    and assert a hot reload happens with **zero** failed requests;
//! 5. still under load, POST `/v1/feedback` click batches (plus a
//!    duplicate idempotency key that must dedupe) and assert the
//!    background refit publishes a new generation — provenance flips to
//!    `online-refit` in `/healthz` and `/version` — again with zero
//!    failed requests across the swap;
//! 6. close the server's stdin and assert graceful shutdown (drain
//!    report, exit 0) within the deadline.
//!
//! Usage: `serve_smoke --bin ./target/release/microbrowse [--dir TMPDIR]`

use std::io::{BufRead, BufReader, Read};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::{Child, Command, ExitCode, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use microbrowse_api::v1::{FeedbackEvent, FeedbackRequest};
use microbrowse_core::serve::MODEL_SLOT_NAME;
use microbrowse_server::client::Client;
use microbrowse_store::ArtifactSlot;

fn main() -> ExitCode {
    match run() {
        Ok(()) => {
            println!("OK: serve smoke gate green");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("serve_smoke FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Kills the serve child on scope exit so a failed assertion cannot leak a
/// listener.
struct ChildGuard(Child);

impl Drop for ChildGuard {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// A feedback batch with unambiguous CTR gaps, so the background refit
/// has statistically significant pairs to train on.
fn feedback_batch(tag: u64, key: &str) -> FeedbackRequest {
    let contrasts = [
        ("book instantly online", "call during office hours"),
        ("free cancellation", "no refunds"),
        ("price match promise", "prices may vary"),
    ];
    let mut events = Vec::new();
    for i in 0..6u64 {
        let adgroup = tag * 100 + i;
        let (win, lose) = contrasts[(i % 3) as usize];
        events.push(FeedbackEvent {
            adgroup,
            creative: adgroup * 10,
            snippet: format!("cheap flights | {win} | trusted airline"),
            position: 0,
            query_class: "cheap flights".to_string(),
            impressions: 5000,
            clicks: 900,
        });
        events.push(FeedbackEvent {
            adgroup,
            creative: adgroup * 10 + 1,
            snippet: format!("cheap flights | {lose} | trusted airline"),
            position: 1,
            query_class: "cheap flights".to_string(),
            impressions: 5000,
            clicks: 100,
        });
    }
    FeedbackRequest {
        key: key.to_string(),
        events,
    }
}

fn run() -> Result<(), String> {
    let bin = flag("--bin").ok_or("missing --bin PATH (the microbrowse binary)")?;
    let dir = flag("--dir").map(PathBuf::from).unwrap_or_else(|| {
        std::env::temp_dir().join(format!("mb-serve-smoke-{}", std::process::id()))
    });
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

    // 1. Train a small model + stats into the slot directory.
    let train = Command::new(&bin)
        .args(["train", "--adgroups", "120", "--seed", "3", "--spec", "m4"])
        .arg("--model")
        .arg(&dir)
        .arg("--stats")
        .arg(&dir)
        .output()
        .map_err(|e| format!("spawn train: {e}"))?;
    if !train.status.success() {
        return Err(format!(
            "train failed: {}",
            String::from_utf8_lossy(&train.stderr)
        ));
    }

    // 2. Serve on an ephemeral port, stdin piped (EOF = shutdown signal).
    let mut child = ChildGuard(
        Command::new(&bin)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--queue-depth",
                "64",
                "--refit-interval",
                "1",
            ])
            .arg("--slot-dir")
            .arg(&dir)
            .arg("--feedback-journal")
            .arg(dir.join("journal"))
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?,
    );
    let stdout = child.0.stdout.take().ok_or("serve stdout not captured")?;
    let mut lines = BufReader::new(stdout);
    let mut first = String::new();
    lines
        .read_line(&mut first)
        .map_err(|e| format!("read serve stdout: {e}"))?;
    let addr: SocketAddr = first
        .trim()
        .strip_prefix("listening on ")
        .ok_or_else(|| format!("unexpected serve banner: {first:?}"))?
        .parse()
        .map_err(|e| format!("bad address in banner {first:?}: {e}"))?;

    // 3. Basic endpoint checks.
    let mut probe = Client::connect(addr).map_err(|e| format!("connect: {e}"))?;
    let health = probe.get("/healthz").map_err(|e| format!("healthz: {e}"))?;
    if health.status != 200 || !health.body_str().contains("\"status\":\"ok\"") {
        return Err(format!(
            "healthz expected 200 ok, got {} {}",
            health.status,
            health.body_str()
        ));
    }
    let score = probe
        .post(
            "/v1/score",
            "{\"r\":\"cheap flights|book now|save today\",\"s\":\"flights|book|standard fare\"}",
        )
        .map_err(|e| format!("score: {e}"))?;
    if score.status != 200 || !score.body_str().contains("\"score\":") {
        return Err(format!(
            "score expected 200 with score field, got {} {}",
            score.status,
            score.body_str()
        ));
    }
    let metrics = probe.get("/metrics").map_err(|e| format!("metrics: {e}"))?;
    if metrics.status != 200
        || !metrics
            .body_str()
            .contains("microbrowse_http_requests_total")
    {
        return Err("metrics dump missing microbrowse_http_requests_total".into());
    }

    // 4. Hot reload under sustained load, zero failed requests allowed.
    let stop = Arc::new(AtomicBool::new(false));
    let ok_count = Arc::new(AtomicU64::new(0));
    let err_count = Arc::new(AtomicU64::new(0));
    let loaders: Vec<_> = (0..3)
        .map(|_| {
            let (stop, ok_count, err_count) = (
                Arc::clone(&stop),
                Arc::clone(&ok_count),
                Arc::clone(&err_count),
            );
            std::thread::spawn(move || {
                let mut client = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        err_count.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    match client.post(
                        "/v1/score",
                        "{\"r\":\"cheap flights|book now\",\"s\":\"flights|book\"}",
                    ) {
                        Ok(resp) if resp.status == 200 => {
                            ok_count.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            err_count.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(300));
    // Commit a fresh model generation (byte-identical is enough to bump
    // the generation number and trigger the swap).
    let slot = ArtifactSlot::new(&dir, MODEL_SLOT_NAME);
    let current = slot
        .manifest_generation()
        .ok_or("model slot has no manifest")?;
    let bytes = std::fs::read(slot.generation_path(current))
        .map_err(|e| format!("read generation {current}: {e}"))?;
    let committed = slot
        .commit(&bytes)
        .map_err(|e| format!("commit new generation: {e}"))?;

    // Wait for the server to pick it up.
    let reload_deadline = Instant::now() + Duration::from_secs(10);
    let mut reloaded = false;
    while Instant::now() < reload_deadline {
        let health = probe.get("/healthz").map_err(|e| format!("healthz: {e}"))?;
        if health
            .body_str()
            .contains(&format!("\"model_generation\":{committed}"))
        {
            reloaded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !reloaded {
        stop.store(true, Ordering::Relaxed);
        return Err(format!(
            "hot reload to generation {committed} not observed within deadline"
        ));
    }

    // 5. Online feedback phase, still under load: ingest click batches,
    // dedupe a retried key, and wait for the background refit to publish
    // a new generation — the zero-drop requirement now covers the refit
    // swap too.
    let health = probe.get("/healthz").map_err(|e| format!("healthz: {e}"))?;
    if !health.body_str().contains("\"provenance\":\"batch-built\"") {
        return Err(format!(
            "healthz should report batch-built provenance before feedback, got {}",
            health.body_str()
        ));
    }
    let first = probe
        .feedback(&feedback_batch(1, "smoke-batch-1"), "smoke-batch-1")
        .map_err(|e| format!("feedback: {e}"))?;
    if first.deduped || first.accepted != 12 {
        return Err(format!(
            "first feedback batch: wanted 12 accepted, got {} (deduped {})",
            first.accepted, first.deduped
        ));
    }
    // An ambiguous-retry duplicate: same idempotency key, must not
    // double-count.
    let dup = probe
        .feedback(&feedback_batch(1, "smoke-batch-1"), "smoke-batch-1")
        .map_err(|e| format!("duplicate feedback: {e}"))?;
    if !dup.deduped || dup.accepted != 0 || dup.seq != first.seq {
        return Err(format!(
            "duplicate key: wanted deduped echo of seq {}, got accepted {} deduped {} seq {}",
            first.seq, dup.accepted, dup.deduped, dup.seq
        ));
    }
    let second = probe
        .feedback(&feedback_batch(2, "smoke-batch-2"), "smoke-batch-2")
        .map_err(|e| format!("second feedback batch: {e}"))?;
    if second.seq <= first.seq {
        return Err(format!(
            "sequence must advance: {} then {}",
            first.seq, second.seq
        ));
    }

    // Refit cadence is 1 s: wait for provenance to flip.
    let refit_deadline = Instant::now() + Duration::from_secs(30);
    let mut refitted = false;
    while Instant::now() < refit_deadline {
        let health = probe.get("/healthz").map_err(|e| format!("healthz: {e}"))?;
        if health
            .body_str()
            .contains("\"provenance\":\"online-refit\"")
        {
            refitted = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    if !refitted {
        stop.store(true, Ordering::Relaxed);
        return Err("provenance never flipped to online-refit within deadline".into());
    }
    let version = probe.get("/version").map_err(|e| format!("version: {e}"))?;
    let vbody = version.body_str();
    if !vbody.contains("online-feedback") || !vbody.contains("model-origin:online-refit") {
        return Err(format!(
            "version should advertise online-feedback + model-origin:online-refit, got {vbody}"
        ));
    }

    // Keep hammering briefly across the swap, then stop.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    for h in loaders {
        h.join().map_err(|_| "load thread panicked")?;
    }
    let ok = ok_count.load(Ordering::Relaxed);
    let errs = err_count.load(Ordering::Relaxed);
    if errs > 0 || ok == 0 {
        return Err(format!(
            "sustained load saw {errs} failed request(s) ({ok} ok) across the reload"
        ));
    }
    let metrics = probe.get("/metrics").map_err(|e| format!("metrics: {e}"))?;
    let body = metrics.body_str();
    let reloads = body
        .lines()
        .find_map(|l| l.strip_prefix("microbrowse_serve_reloads_total "))
        .and_then(|v| v.trim().parse::<u64>().ok())
        .ok_or("metrics dump missing microbrowse_serve_reloads_total")?;
    if reloads < 1 {
        return Err("serve.reload counter did not increment".into());
    }
    let metric = |name: &str| -> Result<u64, String> {
        body.lines()
            .find_map(|l| l.strip_prefix(name).map(str::trim))
            .and_then(|v| v.parse::<u64>().ok())
            .ok_or_else(|| format!("metrics dump missing {name}"))
    };
    let deduped = metric("microbrowse_feedback_deduped_total ")?;
    if deduped < 1 {
        return Err("duplicate feedback key did not bump the dedupe counter".into());
    }
    let refits = metric("microbrowse_refit_total ")?;
    if refits < 1 {
        return Err("refit counter did not increment".into());
    }
    let events_total = metric("microbrowse_feedback_events_total ")?;
    if events_total != 24 {
        return Err(format!(
            "feedback events counter: wanted 24 (two 12-event batches, duplicate excluded), got {events_total}"
        ));
    }
    drop(probe);

    // 6. Graceful shutdown: close stdin, expect exit 0 within deadline.
    drop(child.0.stdin.take());
    let exit_deadline = Instant::now() + Duration::from_secs(15);
    let status = loop {
        if let Some(status) = child.0.try_wait().map_err(|e| format!("try_wait: {e}"))? {
            break status;
        }
        if Instant::now() >= exit_deadline {
            return Err("serve did not exit within the drain deadline".into());
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    if !status.success() {
        return Err(format!("serve exited with {status}"));
    }
    let mut rest = String::new();
    lines
        .read_to_string(&mut rest)
        .map_err(|e| format!("read drain report: {e}"))?;
    if !rest.contains("drained") {
        return Err(format!("missing drain report in serve output: {rest:?}"));
    }
    println!(
        "serve smoke: {ok} requests ok across reload (gen {current} -> {committed}) and online \
         refit ({refits} refit(s), {deduped} deduped batch(es)), {rest}",
        rest = rest.trim()
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
