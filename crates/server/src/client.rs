//! Minimal blocking HTTP/1.1 client.
//!
//! Exists so the integration tests, the `serve_smoke` gate, and the
//! `bench_serve` load generator can drive the server without external
//! tooling (`curl` is not guaranteed in the build environment). Keep-alive
//! is the default: one [`Client`] holds one connection and reuses it
//! across requests.
//!
//! The typed helpers ([`Client::score`], [`Client::rank`],
//! [`Client::score_batch`], [`Client::suggest`], [`Client::explain`])
//! speak the [`microbrowse_api::v1`] wire types, so callers never assemble
//! or pick apart JSON by hand; 2xx bodies parse into the response structs
//! and everything else comes back as the typed [`ApiError`]. Each is a
//! one-liner over the generic [`Client::call_typed`], which owns the
//! encode → POST → parse round trip once for every endpoint.
//!
//! [`ResilientClient`] wraps the raw client into the failover-ready tier
//! used under overload: jittered exponential-backoff retries (only for
//! failures known to be safe — connect refused, timeouts, request never
//! sent, 5xx answers — never for ambiguous mid-response failures of
//! non-idempotent calls; [`ResilientClient::feedback`] makes its POST
//! idempotent by pinning one `X-Mb-Idempotency-Key` across every attempt,
//! which the server's journal dedupes), a per-call deadline budget that
//! bounds connects,
//! IO, *and* backoff sleeps and is propagated to the server via
//! `X-Mb-Deadline-Ms`, and a closed/open/half-open [`CircuitBreaker`] that
//! stops hammering a peer that has stopped answering.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use microbrowse_obs as obs;

use crate::deadline::DEADLINE_HEADER;
use crate::http::{PARENT_SPAN_HEADER, TRACE_ID_HEADER};

use microbrowse_api::v1::{
    BatchRequest, BatchResponse, ErrorEnvelope, ExplainRequest, ExplainResponse, FeedbackRequest,
    FeedbackResponse, RankRequest, RankResponse, ScoreRequest, ScoreResponse, SuggestRequest,
    SuggestResponse,
};

use crate::http::IDEMPOTENCY_HEADER;

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (`Content-Length` framing).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A typed request failure: either the transport broke, or the server
/// answered with a non-2xx status (error envelope text included when it
/// parsed).
#[derive(Debug)]
pub enum ApiError {
    /// The request never completed at the IO layer.
    Io(std::io::Error),
    /// The server answered with a non-2xx status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The `"error"` field of the envelope, or the raw body when the
        /// envelope did not parse.
        error: String,
    },
    /// A 2xx body did not parse as the expected v1 shape.
    Malformed(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Io(e) => write!(f, "io error: {e}"),
            ApiError::Status { status, error } => write!(f, "http {status}: {error}"),
            ApiError::Malformed(detail) => write!(f, "malformed response: {detail}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        ApiError::Io(e)
    }
}

/// One keep-alive connection to a server.
pub struct Client {
    stream: TcpStream,
    leftover: Vec<u8>,
}

fn bad_response(detail: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string())
}

impl Client {
    /// Connect with 5-second IO timeouts.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connect with explicit IO timeouts.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self {
            stream,
            leftover: Vec::new(),
        })
    }

    /// Send one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        self.request_with_headers(method, path, &[], body)
    }

    /// Send one request with extra headers and read the full response.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        extra: &[(&str, String)],
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        self.request_tagged(method, path, extra, body)
            .map_err(|e| e.error)
    }

    /// Replace the IO timeouts on the live connection (used by the
    /// resilient tier to bound each attempt by the remaining budget).
    pub fn set_io_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// [`Client::request_with_headers`], but failures say *which phase*
    /// broke — the retry policy needs to know whether the request might
    /// have reached the server.
    pub fn request_tagged(
        &mut self,
        method: &str,
        path: &str,
        extra: &[(&str, String)],
        body: Option<&str>,
    ) -> Result<HttpResponse, TransportError> {
        let body = body.unwrap_or("");
        let mut head = format!(
            "{method} {path} HTTP/1.1\r\nHost: microbrowse\r\nContent-Length: {}\r\n",
            body.len()
        );
        for (name, value) in extra {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        let send = |error| TransportError {
            phase: TransportPhase::Send,
            error,
        };
        self.stream.write_all(head.as_bytes()).map_err(send)?;
        if !body.is_empty() {
            self.stream.write_all(body.as_bytes()).map_err(send)?;
        }
        self.read_response().map_err(|error| TransportError {
            phase: TransportPhase::Receive,
            error,
        })
    }

    /// Shorthand for `GET`.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// Shorthand for a JSON `POST`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// One typed endpoint round trip: `POST` the encoded request, then
    /// map the response through [`Client::parse_2xx`]. Every per-endpoint
    /// helper is a one-liner over this.
    fn call_typed<T>(
        &mut self,
        path: &str,
        body: &str,
        parse: impl FnOnce(&str) -> Result<T, microbrowse_api::v1::WireError>,
    ) -> Result<T, ApiError> {
        let resp = self.post(path, body)?;
        Self::parse_2xx(&resp, parse)
    }

    /// `POST /v1/score`, typed end to end.
    pub fn score(&mut self, req: &ScoreRequest) -> Result<ScoreResponse, ApiError> {
        self.call_typed("/v1/score", &req.to_json(), ScoreResponse::from_json)
    }

    /// `POST /v1/rank`, typed end to end.
    pub fn rank(&mut self, req: &RankRequest) -> Result<RankResponse, ApiError> {
        self.call_typed("/v1/rank", &req.to_json(), RankResponse::from_json)
    }

    /// `POST /v1/batch`, typed end to end.
    pub fn score_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, ApiError> {
        self.call_typed("/v1/batch", &req.to_json(), BatchResponse::from_json)
    }

    /// `POST /v1/suggest`, typed end to end.
    pub fn suggest(&mut self, req: &SuggestRequest) -> Result<SuggestResponse, ApiError> {
        self.call_typed("/v1/suggest", &req.to_json(), SuggestResponse::from_json)
    }

    /// `POST /v1/explain`, typed end to end.
    pub fn explain(&mut self, req: &ExplainRequest) -> Result<ExplainResponse, ApiError> {
        self.call_typed("/v1/explain", &req.to_json(), ExplainResponse::from_json)
    }

    /// `POST /v1/feedback`, typed end to end, with an explicit idempotency
    /// key sent as `X-Mb-Idempotency-Key`.
    pub fn feedback(
        &mut self,
        req: &FeedbackRequest,
        key: &str,
    ) -> Result<FeedbackResponse, ApiError> {
        let headers = [(IDEMPOTENCY_HEADER, key.to_string())];
        let resp =
            self.request_with_headers("POST", "/v1/feedback", &headers, Some(&req.to_json()))?;
        Self::parse_2xx(&resp, FeedbackResponse::from_json)
    }

    /// Map a raw response to a parsed 2xx body or a typed [`ApiError`].
    fn parse_2xx<T>(
        resp: &HttpResponse,
        parse: impl FnOnce(&str) -> Result<T, microbrowse_api::v1::WireError>,
    ) -> Result<T, ApiError> {
        let body = resp.body_str();
        if !(200..300).contains(&resp.status) {
            let error = ErrorEnvelope::from_json(&body).map_or(body, |env| env.error);
            return Err(ApiError::Status {
                status: resp.status,
                error,
            });
        }
        parse(&body).map_err(|e| ApiError::Malformed(e.to_string()))
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.leftover.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(i) = self.leftover.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            if self.fill()? == 0 {
                return Err(bad_response("connection closed mid-response"));
            }
        };
        let head = String::from_utf8(self.leftover[..head_end - 4].to_vec())
            .map_err(|_| bad_response("response head not UTF-8"))?;
        self.leftover.drain(..head_end);

        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad_response("empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_response("malformed status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad_response("malformed response header"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad_response("missing content-length"))?;
        while self.leftover.len() < length {
            if self.fill()? == 0 {
                return Err(bad_response("connection closed mid-body"));
            }
        }
        let body = self.leftover.drain(..length).collect();
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}

/// Where a transport attempt failed — the retry policy's load-bearing bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportPhase {
    /// The connection could not be established; the server saw nothing.
    Connect,
    /// Writing the request failed. `Content-Length` framing means the
    /// server cannot act on a partial request, so retrying is safe.
    Send,
    /// The request was fully written but the response never fully arrived.
    /// **Ambiguous**: the server may or may not have processed it.
    Receive,
}

/// An IO failure tagged with the phase it happened in.
#[derive(Debug)]
pub struct TransportError {
    /// Which phase broke.
    pub phase: TransportPhase,
    /// The underlying IO error.
    pub error: std::io::Error,
}

/// Circuit-breaker states, the classic three.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: every call admitted.
    Closed,
    /// Tripped: calls rejected without touching the network until the
    /// cooldown elapses.
    Open,
    /// Cooldown over: the next call is a probe. Success closes the
    /// breaker, failure re-opens it.
    HalfOpen,
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Consecutive failures that trip the breaker.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 5,
            cooldown: Duration::from_secs(1),
        }
    }
}

/// A closed/open/half-open circuit breaker for one downstream peer.
///
/// Designed for a blocking single-threaded client: [`admit`](Self::admit)
/// both answers "may this call proceed?" and performs the open → half-open
/// transition when the cooldown has elapsed, so the caller never inspects
/// clocks. Every state transition emits a `client.breaker_*` trace event
/// and bumps a `microbrowse_client_breaker_*_total` counter.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_at: Option<Instant>,
}

impl CircuitBreaker {
    /// A closed breaker with this tuning.
    pub fn new(cfg: BreakerConfig) -> Self {
        Self {
            cfg,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at: None,
        }
    }

    /// The current state (without advancing open → half-open).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a call may proceed right now. In `Open`, flips to
    /// `HalfOpen` once the cooldown has elapsed and admits the probe.
    pub fn admit(&mut self) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                let cooled = match self.opened_at {
                    Some(t) => t.elapsed() >= self.cfg.cooldown,
                    None => true,
                };
                if cooled {
                    self.transition(BreakerState::HalfOpen);
                }
                cooled
            }
        }
    }

    /// Record a successful call: closes the breaker from any state.
    pub fn record_success(&mut self) {
        self.consecutive_failures = 0;
        if self.state != BreakerState::Closed {
            self.transition(BreakerState::Closed);
        }
    }

    /// Record a failed call: a half-open probe failure re-opens
    /// immediately; in closed state the failure streak is counted against
    /// the threshold.
    pub fn record_failure(&mut self) {
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::HalfOpen => self.transition(BreakerState::Open),
            BreakerState::Closed if self.consecutive_failures >= self.cfg.failure_threshold => {
                self.transition(BreakerState::Open)
            }
            _ => {}
        }
    }

    fn transition(&mut self, to: BreakerState) {
        self.state = to;
        match to {
            BreakerState::Open => {
                self.opened_at = Some(Instant::now());
                obs::counter!("microbrowse_client_breaker_opened_total").inc();
                obs::trace::event("client.breaker_open")
                    .with("failures", self.consecutive_failures as u64);
            }
            BreakerState::HalfOpen => {
                obs::counter!("microbrowse_client_breaker_half_open_total").inc();
                obs::trace::event("client.breaker_half_open");
            }
            BreakerState::Closed => {
                obs::counter!("microbrowse_client_breaker_closed_total").inc();
                obs::trace::event("client.breaker_closed");
            }
        }
    }
}

/// Retry tuning for [`ResilientClient`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Backoff before the second attempt; doubles each retry.
    pub base_backoff: Duration,
    /// Backoff ceiling (before jitter).
    pub max_backoff: Duration,
    /// Treat POSTs as idempotent, making ambiguous mid-response failures
    /// retryable. Correct for this API (scoring is read-only) but off by
    /// default — the caller must opt in to at-least-once semantics.
    pub treat_posts_idempotent: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            treat_posts_idempotent: false,
        }
    }
}

/// Why a [`ResilientClient::call`] gave up.
#[derive(Debug)]
pub enum CallError {
    /// The circuit breaker is open; the network was not touched.
    BreakerOpen,
    /// The per-call deadline budget ran out before a usable response.
    DeadlineExhausted {
        /// Attempts completed before the budget ran out.
        attempts: u32,
    },
    /// Every attempt failed at the transport layer.
    Transport {
        /// Attempts made.
        attempts: u32,
        /// The last attempt's IO error.
        error: std::io::Error,
    },
    /// The request was sent but the response never fully arrived, and the
    /// call is not safe to retry (non-idempotent without the opt-in).
    Ambiguous {
        /// The IO error observed mid-response.
        error: std::io::Error,
    },
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::BreakerOpen => write!(f, "circuit breaker open"),
            CallError::DeadlineExhausted { attempts } => {
                write!(f, "deadline budget exhausted after {attempts} attempts")
            }
            CallError::Transport { attempts, error } => {
                write!(f, "transport failed after {attempts} attempts: {error}")
            }
            CallError::Ambiguous { error } => {
                write!(f, "ambiguous mid-response failure (not retried): {error}")
            }
        }
    }
}

impl std::error::Error for CallError {}

/// The failover-ready tier over [`Client`]: retries, backoff, breaker,
/// and end-to-end deadline propagation.
///
/// Each [`call`](Self::call) takes a deadline *budget*. The budget bounds
/// everything the call does — connect timeouts, per-attempt IO timeouts,
/// and backoff sleeps all shrink to the remaining budget — and is
/// propagated to the server in `X-Mb-Deadline-Ms`, re-computed per attempt
/// so the server sees only what is actually left.
pub struct ResilientClient {
    addr: SocketAddr,
    policy: RetryPolicy,
    breaker: CircuitBreaker,
    io_timeout: Duration,
    conn: Option<Client>,
    rng: u64,
    last_trace: u128,
}

impl ResilientClient {
    /// A client for `addr` with default policy and breaker.
    pub fn new(addr: SocketAddr) -> Self {
        Self {
            addr,
            policy: RetryPolicy::default(),
            breaker: CircuitBreaker::new(BreakerConfig::default()),
            io_timeout: Duration::from_secs(5),
            // Deterministic jitter seed; vary per client by address so two
            // clients hammering one server do not retry in lockstep.
            rng: 0x9E37_79B9 ^ ((addr.port() as u64) << 17),
            conn: None,
            last_trace: 0,
        }
    }

    /// The trace id stamped on the most recent [`call`](Self::call), for
    /// joining client-side outcomes to the server's `/debug/trace`.
    pub fn last_trace_id(&self) -> u128 {
        self.last_trace
    }

    /// Replace the retry policy.
    pub fn with_policy(mut self, policy: RetryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replace the breaker tuning (resets the breaker to closed).
    pub fn with_breaker(mut self, cfg: BreakerConfig) -> Self {
        self.breaker = CircuitBreaker::new(cfg);
        self
    }

    /// Replace the per-attempt IO timeout ceiling.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = timeout;
        self
    }

    /// The breaker's current state (for tests and introspection).
    pub fn breaker_state(&self) -> BreakerState {
        self.breaker.state()
    }

    /// One resilient call. Returns the final response for any status the
    /// retry loop settles on — including a 5xx that survived every retry,
    /// so the caller still sees the server's error envelope.
    pub fn call(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        budget: Duration,
    ) -> Result<HttpResponse, CallError> {
        self.call_with_headers(method, path, body, budget, &[], false)
    }

    /// [`call`](Self::call) with extra request headers and an explicit
    /// idempotency claim. When `idempotent` is true, ambiguous mid-response
    /// failures of POSTs are retryable even without the blanket
    /// [`RetryPolicy::treat_posts_idempotent`] opt-in — the caller promises
    /// the server can recognise and absorb the duplicate (e.g. via an
    /// `X-Mb-Idempotency-Key` header in `extra`).
    pub fn call_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        budget: Duration,
        extra: &[(&str, String)],
        idempotent: bool,
    ) -> Result<HttpResponse, CallError> {
        let deadline = Instant::now() + budget;
        // One trace id covers every attempt of this call. Reuse the
        // caller's trace when one is active (nested instrumentation);
        // otherwise mint a fresh id — the wire headers go out either way,
        // even with local instrumentation disabled.
        let ctx = obs::trace::current_context();
        let trace = if ctx.trace_id() != 0 {
            ctx.trace_id()
        } else {
            obs::trace::new_trace_id()
        };
        self.last_trace = trace;
        let _trace_guard =
            (ctx.trace_id() == 0).then(|| obs::trace::TraceContext::for_trace(trace).enter());
        let mut call_span = obs::trace::span("client.call").with("path", path);
        let parent_span = call_span.id();
        let mut attempts = 0u32;
        loop {
            if !self.breaker.admit() {
                obs::counter!("microbrowse_client_breaker_rejected_total").inc();
                return Err(CallError::BreakerOpen);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                obs::counter!("microbrowse_client_deadline_exhausted_total").inc();
                return Err(CallError::DeadlineExhausted { attempts });
            }
            attempts += 1;
            obs::counter!("microbrowse_client_attempts_total").inc();
            // A failed attempt is either a 5xx response (kept so the
            // caller can see the final envelope) or a retryable IO error.
            let failure: Result<HttpResponse, std::io::Error> =
                match self.attempt(method, path, body, remaining, trace, parent_span, extra) {
                    Ok(resp) if resp.status < 500 => {
                        self.breaker.record_success();
                        call_span.add("status", u64::from(resp.status));
                        call_span.add("attempts", u64::from(attempts));
                        return Ok(resp);
                    }
                    Ok(resp) => {
                        // The server answered 5xx: it is reachable but
                        // overloaded or broken. Not ambiguous — the request
                        // was *not* served — so retrying is safe.
                        self.breaker.record_failure();
                        self.conn = None;
                        Ok(resp)
                    }
                    Err(e) => {
                        self.breaker.record_failure();
                        self.conn = None;
                        let retryable = match e.phase {
                            TransportPhase::Connect | TransportPhase::Send => true,
                            TransportPhase::Receive => {
                                idempotent || method != "POST" || self.policy.treat_posts_idempotent
                            }
                        };
                        if !retryable {
                            return Err(CallError::Ambiguous { error: e.error });
                        }
                        Err(e.error)
                    }
                };
            if attempts >= self.policy.max_attempts {
                call_span.add("attempts", u64::from(attempts));
                return match failure {
                    Ok(resp) => {
                        call_span.add("status", u64::from(resp.status));
                        Ok(resp)
                    }
                    Err(error) => Err(CallError::Transport { attempts, error }),
                };
            }
            let backoff = self.backoff(attempts);
            if backoff >= deadline.saturating_duration_since(Instant::now()) {
                // Sleeping would blow the budget; the caller's deadline
                // beats one more attempt.
                obs::counter!("microbrowse_client_deadline_exhausted_total").inc();
                return Err(CallError::DeadlineExhausted { attempts });
            }
            obs::counter!("microbrowse_client_retries_total").inc();
            obs::trace::event("client.retry")
                .with("attempt", attempts as u64)
                .with("backoff_ms", backoff.as_millis() as u64);
            std::thread::sleep(backoff);
        }
    }

    /// One typed endpoint round trip through the retry/breaker/deadline
    /// machinery: `POST` the encoded request with a budget, then map the
    /// final response through [`Client::parse_2xx`]. Every read-only
    /// per-endpoint helper is a one-liner over this (feedback differs: it
    /// pins an idempotency key across attempts).
    fn call_typed<T>(
        &mut self,
        path: &str,
        body: &str,
        budget: Duration,
        parse: impl FnOnce(&str) -> Result<T, microbrowse_api::v1::WireError>,
    ) -> Result<T, ApiError> {
        let resp = self.post_json(path, body, budget)?;
        Client::parse_2xx(&resp, parse)
    }

    /// `POST /v1/score` with retries and a deadline budget.
    pub fn score(
        &mut self,
        req: &ScoreRequest,
        budget: Duration,
    ) -> Result<ScoreResponse, ApiError> {
        self.call_typed(
            "/v1/score",
            &req.to_json(),
            budget,
            ScoreResponse::from_json,
        )
    }

    /// `POST /v1/rank` with retries and a deadline budget.
    pub fn rank(&mut self, req: &RankRequest, budget: Duration) -> Result<RankResponse, ApiError> {
        self.call_typed("/v1/rank", &req.to_json(), budget, RankResponse::from_json)
    }

    /// `POST /v1/batch` with retries and a deadline budget.
    pub fn score_batch(
        &mut self,
        req: &BatchRequest,
        budget: Duration,
    ) -> Result<BatchResponse, ApiError> {
        self.call_typed(
            "/v1/batch",
            &req.to_json(),
            budget,
            BatchResponse::from_json,
        )
    }

    /// `POST /v1/suggest` with retries and a deadline budget.
    pub fn suggest(
        &mut self,
        req: &SuggestRequest,
        budget: Duration,
    ) -> Result<SuggestResponse, ApiError> {
        self.call_typed(
            "/v1/suggest",
            &req.to_json(),
            budget,
            SuggestResponse::from_json,
        )
    }

    /// `POST /v1/explain` with retries and a deadline budget.
    pub fn explain(
        &mut self,
        req: &ExplainRequest,
        budget: Duration,
    ) -> Result<ExplainResponse, ApiError> {
        self.call_typed(
            "/v1/explain",
            &req.to_json(),
            budget,
            ExplainResponse::from_json,
        )
    }

    /// `POST /v1/feedback` with retries and a deadline budget.
    ///
    /// Unlike the scoring POSTs, feedback ingestion *mutates* server state,
    /// so a blind retry of an ambiguous mid-response failure could double
    /// count clicks. This helper makes the retry safe instead of forbidden:
    /// every attempt of one logical call carries the same
    /// `X-Mb-Idempotency-Key` (the request's `key` field, or a key minted
    /// from the client's deterministic RNG when the field is empty), and the
    /// server's journal dedupes on it — so the call opts in to
    /// mid-response retries unconditionally.
    pub fn feedback(
        &mut self,
        req: &FeedbackRequest,
        budget: Duration,
    ) -> Result<FeedbackResponse, ApiError> {
        let key = if req.key.is_empty() {
            format!("{:016x}{:016x}", self.next_u64(), self.next_u64())
        } else {
            req.key.clone()
        };
        let headers = [(IDEMPOTENCY_HEADER, key)];
        let resp = self
            .call_with_headers(
                "POST",
                "/v1/feedback",
                Some(&req.to_json()),
                budget,
                &headers,
                true,
            )
            .map_err(|e| match e {
                CallError::Transport { error, .. } | CallError::Ambiguous { error } => {
                    ApiError::Io(error)
                }
                other => ApiError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    other.to_string(),
                )),
            })?;
        Client::parse_2xx(&resp, FeedbackResponse::from_json)
    }

    fn post_json(
        &mut self,
        path: &str,
        body: &str,
        budget: Duration,
    ) -> Result<HttpResponse, ApiError> {
        self.call("POST", path, Some(body), budget)
            .map_err(|e| match e {
                CallError::Transport { error, .. } | CallError::Ambiguous { error } => {
                    ApiError::Io(error)
                }
                other => ApiError::Io(std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    other.to_string(),
                )),
            })
    }

    /// One attempt: (re)connect if needed, clamp IO timeouts to the
    /// remaining budget, propagate the budget in `X-Mb-Deadline-Ms` and
    /// the trace context in `X-Mb-Trace-Id` / `X-Mb-Parent-Span`.
    #[allow(clippy::too_many_arguments)]
    fn attempt(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
        remaining: Duration,
        trace: u128,
        parent_span: u64,
        extra: &[(&str, String)],
    ) -> Result<HttpResponse, TransportError> {
        let timeout = self.io_timeout.min(remaining).max(Duration::from_millis(1));
        if self.conn.is_none() {
            let conn = Client::connect_with_timeout(self.addr, timeout).map_err(|error| {
                TransportError {
                    phase: TransportPhase::Connect,
                    error,
                }
            })?;
            self.conn = Some(conn);
        }
        let Some(conn) = self.conn.as_mut() else {
            // Just assigned above; unreachable, but fail as a connect error
            // rather than panicking in a resilience layer.
            return Err(TransportError {
                phase: TransportPhase::Connect,
                error: std::io::Error::new(std::io::ErrorKind::NotConnected, "no connection"),
            });
        };
        if let Err(error) = conn.set_io_timeout(timeout) {
            return Err(TransportError {
                phase: TransportPhase::Connect,
                error,
            });
        }
        let deadline_ms = remaining.as_millis().max(1) as u64;
        let mut headers = vec![
            (DEADLINE_HEADER, deadline_ms.to_string()),
            (TRACE_ID_HEADER, obs::trace::format_trace_id(trace)),
        ];
        if parent_span != 0 {
            headers.push((PARENT_SPAN_HEADER, parent_span.to_string()));
        }
        for (name, value) in extra {
            headers.push((name, value.clone()));
        }
        conn.request_tagged(method, path, &headers, body)
    }

    /// Jittered exponential backoff before retry number `attempt + 1`:
    /// `base * 2^(attempt-1)` capped at `max_backoff`, scaled by a uniform
    /// factor in `[0.5, 1.5)` so retrying clients spread out.
    fn backoff(&mut self, attempt: u32) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let raw = self
            .policy
            .base_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.policy.max_backoff);
        let jitter = 0.5 + (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        raw.mul_f64(jitter)
    }

    /// SplitMix64 — local, deterministic, dependency-free jitter source.
    fn next_u64(&mut self) -> u64 {
        self.rng = self.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn breaker_walks_the_three_states() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(20),
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.admit());
        b.record_failure();
        b.record_failure();
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "under threshold stays closed"
        );
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "threshold trips the breaker");
        assert!(!b.admit(), "open rejects before cooldown");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit(), "cooldown elapsed: probe admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Open, "probe failure re-opens");
        std::thread::sleep(Duration::from_millis(25));
        assert!(b.admit());
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed, "probe success closes");
        // A success also resets the failure streak.
        b.record_failure();
        b.record_failure();
        b.record_success();
        b.record_failure();
        b.record_failure();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn backoff_is_exponential_capped_and_jittered() {
        let addr: SocketAddr = "127.0.0.1:1".parse().expect("addr");
        let mut c = ResilientClient::new(addr).with_policy(RetryPolicy {
            max_attempts: 8,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            treat_posts_idempotent: false,
        });
        for attempt in 1..=6u32 {
            let expected = Duration::from_millis(100)
                .saturating_mul(1 << (attempt - 1))
                .min(Duration::from_millis(400));
            let got = c.backoff(attempt);
            assert!(
                got >= expected.mul_f64(0.5) && got < expected.mul_f64(1.5),
                "attempt {attempt}: {got:?} outside jitter band of {expected:?}"
            );
        }
    }

    #[test]
    fn connect_refused_is_retried_up_to_max_attempts() {
        // Bind then drop to get a port that refuses connections.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let mut c = ResilientClient::new(addr).with_policy(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            treat_posts_idempotent: false,
        });
        match c.call("GET", "/healthz", None, Duration::from_secs(5)) {
            Err(CallError::Transport { attempts, .. }) => assert_eq!(attempts, 3),
            other => panic!("wanted Transport after 3 attempts, got {other:?}"),
        }
    }

    #[test]
    fn deadline_budget_beats_backoff() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        // First attempt fails fast (refused); min jittered backoff is
        // 50ms > the 30ms budget, so the call must stop after 1 attempt.
        let mut c = ResilientClient::new(addr).with_policy(RetryPolicy {
            max_attempts: 10,
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(100),
            treat_posts_idempotent: false,
        });
        let started = Instant::now();
        match c.call("GET", "/healthz", None, Duration::from_millis(30)) {
            Err(CallError::DeadlineExhausted { attempts }) => assert_eq!(attempts, 1),
            other => panic!("wanted DeadlineExhausted, got {other:?}"),
        }
        assert!(
            started.elapsed() < Duration::from_millis(500),
            "gave up promptly instead of sleeping through the budget"
        );
    }

    #[test]
    fn feedback_retries_ambiguous_mid_response_failure_with_same_key() {
        use microbrowse_api::v1::FeedbackEvent;
        use std::io::{Read as _, Write as _};

        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        // Fake server: first connection reads the request then dies
        // mid-response (ambiguous Receive failure); second connection
        // answers a full FeedbackResponse. Both request heads are captured
        // so the test can assert the idempotency key was pinned.
        let server = std::thread::spawn(move || {
            let mut heads = Vec::new();
            let read_head = |stream: &mut std::net::TcpStream| {
                let mut buf = Vec::new();
                let mut chunk = [0u8; 1024];
                loop {
                    let n = stream.read(&mut chunk).expect("read request");
                    buf.extend_from_slice(&chunk[..n]);
                    if n == 0 || buf.windows(4).any(|w| w == b"\r\n\r\n") {
                        break;
                    }
                }
                String::from_utf8_lossy(&buf).into_owned()
            };
            {
                let (mut stream, _) = listener.accept().expect("accept 1");
                heads.push(read_head(&mut stream));
                // Partial response: head promises a body that never comes.
                stream
                    .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 60\r\n\r\n{")
                    .expect("partial write");
                // Drop closes the socket mid-body.
            }
            {
                let (mut stream, _) = listener.accept().expect("accept 2");
                heads.push(read_head(&mut stream));
                let body = r#"{"accepted":1,"deduped":true,"seq":7,"latency_us":10}"#;
                let resp = format!(
                    "HTTP/1.1 200 OK\r\nContent-Length: {}\r\n\r\n{body}",
                    body.len()
                );
                stream.write_all(resp.as_bytes()).expect("full write");
            }
            heads
        });

        let mut c = ResilientClient::new(addr).with_policy(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            treat_posts_idempotent: false,
        });
        let req = FeedbackRequest {
            key: String::new(),
            events: vec![FeedbackEvent {
                adgroup: 1,
                creative: 2,
                snippet: "cheap flights | book now".to_string(),
                position: 0,
                query_class: "travel".to_string(),
                impressions: 10,
                clicks: 1,
            }],
        };
        let resp = c
            .feedback(&req, Duration::from_secs(5))
            .expect("retry should recover the ambiguous failure");
        assert_eq!(resp.seq, 7);
        assert!(resp.deduped, "fake server says the journal deduped it");

        let heads = server.join().expect("server thread");
        assert_eq!(heads.len(), 2, "exactly one retry");
        let key_of = |head: &str| {
            head.lines()
                .find_map(|l| l.strip_prefix("x-mb-idempotency-key: "))
                .map(str::to_string)
                .unwrap_or_else(|| panic!("no idempotency key in request head: {head}"))
        };
        let (k1, k2) = (key_of(&heads[0]), key_of(&heads[1]));
        assert_eq!(k1, k2, "the same key must cover every attempt");
        assert_eq!(k1.len(), 32, "minted keys are 128-bit hex");
    }

    #[test]
    fn plain_post_still_refuses_ambiguous_retry() {
        use std::io::Write as _;
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let server = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().expect("accept");
            let mut chunk = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut chunk);
            stream
                .write_all(b"HTTP/1.1 200 OK\r\nContent-Length: 60\r\n\r\n{")
                .expect("partial write");
        });
        let mut c = ResilientClient::new(addr).with_policy(RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
            treat_posts_idempotent: false,
        });
        match c.call("POST", "/v1/score", Some("{}"), Duration::from_secs(5)) {
            Err(CallError::Ambiguous { .. }) => {}
            other => panic!("wanted Ambiguous (no retry), got {other:?}"),
        }
        server.join().expect("server thread");
    }

    #[test]
    fn breaker_opens_after_repeated_connect_failures() {
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let mut c = ResilientClient::new(addr)
            .with_policy(RetryPolicy {
                max_attempts: 1,
                base_backoff: Duration::from_millis(1),
                max_backoff: Duration::from_millis(1),
                treat_posts_idempotent: false,
            })
            .with_breaker(BreakerConfig {
                failure_threshold: 2,
                cooldown: Duration::from_secs(30),
            });
        for _ in 0..2 {
            assert!(c
                .call("GET", "/healthz", None, Duration::from_secs(1))
                .is_err());
        }
        assert_eq!(c.breaker_state(), BreakerState::Open);
        match c.call("GET", "/healthz", None, Duration::from_secs(1)) {
            Err(CallError::BreakerOpen) => {}
            other => panic!("wanted BreakerOpen, got {other:?}"),
        }
    }
}
