//! Minimal blocking HTTP/1.1 client.
//!
//! Exists so the integration tests, the `serve_smoke` gate, and the
//! `bench_serve` load generator can drive the server without external
//! tooling (`curl` is not guaranteed in the build environment). Keep-alive
//! is the default: one [`Client`] holds one connection and reuses it
//! across requests.
//!
//! The typed helpers ([`Client::score`], [`Client::rank`],
//! [`Client::score_batch`]) speak the [`microbrowse_api::v1`] wire types,
//! so callers never assemble or pick apart JSON by hand; 2xx bodies parse
//! into the response structs and everything else comes back as the typed
//! [`ApiError`].

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use microbrowse_api::v1::{
    BatchRequest, BatchResponse, ErrorEnvelope, RankRequest, RankResponse, ScoreRequest,
    ScoreResponse,
};

/// A parsed response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Headers with lowercased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Body bytes (`Content-Length` framing).
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The body as UTF-8 (lossy).
    pub fn body_str(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A typed request failure: either the transport broke, or the server
/// answered with a non-2xx status (error envelope text included when it
/// parsed).
#[derive(Debug)]
pub enum ApiError {
    /// The request never completed at the IO layer.
    Io(std::io::Error),
    /// The server answered with a non-2xx status.
    Status {
        /// The HTTP status code.
        status: u16,
        /// The `"error"` field of the envelope, or the raw body when the
        /// envelope did not parse.
        error: String,
    },
    /// A 2xx body did not parse as the expected v1 shape.
    Malformed(String),
}

impl std::fmt::Display for ApiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApiError::Io(e) => write!(f, "io error: {e}"),
            ApiError::Status { status, error } => write!(f, "http {status}: {error}"),
            ApiError::Malformed(detail) => write!(f, "malformed response: {detail}"),
        }
    }
}

impl std::error::Error for ApiError {}

impl From<std::io::Error> for ApiError {
    fn from(e: std::io::Error) -> Self {
        ApiError::Io(e)
    }
}

/// One keep-alive connection to a server.
pub struct Client {
    stream: TcpStream,
    leftover: Vec<u8>,
}

fn bad_response(detail: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, detail.to_string())
}

impl Client {
    /// Connect with 5-second IO timeouts.
    pub fn connect(addr: SocketAddr) -> std::io::Result<Self> {
        Self::connect_with_timeout(addr, Duration::from_secs(5))
    }

    /// Connect with explicit IO timeouts.
    pub fn connect_with_timeout(addr: SocketAddr, timeout: Duration) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self {
            stream,
            leftover: Vec::new(),
        })
    }

    /// Send one request and read the full response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponse> {
        let body = body.unwrap_or("");
        let head = format!(
            "{method} {path} HTTP/1.1\r\nHost: microbrowse\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        self.stream.write_all(head.as_bytes())?;
        if !body.is_empty() {
            self.stream.write_all(body.as_bytes())?;
        }
        self.read_response()
    }

    /// Shorthand for `GET`.
    pub fn get(&mut self, path: &str) -> std::io::Result<HttpResponse> {
        self.request("GET", path, None)
    }

    /// Shorthand for a JSON `POST`.
    pub fn post(&mut self, path: &str, body: &str) -> std::io::Result<HttpResponse> {
        self.request("POST", path, Some(body))
    }

    /// `POST /v1/score`, typed end to end.
    pub fn score(&mut self, req: &ScoreRequest) -> Result<ScoreResponse, ApiError> {
        let resp = self.post("/v1/score", &req.to_json())?;
        Self::parse_2xx(&resp, ScoreResponse::from_json)
    }

    /// `POST /v1/rank`, typed end to end.
    pub fn rank(&mut self, req: &RankRequest) -> Result<RankResponse, ApiError> {
        let resp = self.post("/v1/rank", &req.to_json())?;
        Self::parse_2xx(&resp, RankResponse::from_json)
    }

    /// `POST /v1/batch`, typed end to end.
    pub fn score_batch(&mut self, req: &BatchRequest) -> Result<BatchResponse, ApiError> {
        let resp = self.post("/v1/batch", &req.to_json())?;
        Self::parse_2xx(&resp, BatchResponse::from_json)
    }

    /// Map a raw response to a parsed 2xx body or a typed [`ApiError`].
    fn parse_2xx<T>(
        resp: &HttpResponse,
        parse: impl FnOnce(&str) -> Result<T, microbrowse_api::v1::WireError>,
    ) -> Result<T, ApiError> {
        let body = resp.body_str();
        if !(200..300).contains(&resp.status) {
            let error = ErrorEnvelope::from_json(&body).map_or(body, |env| env.error);
            return Err(ApiError::Status {
                status: resp.status,
                error,
            });
        }
        parse(&body).map_err(|e| ApiError::Malformed(e.to_string()))
    }

    fn fill(&mut self) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk)?;
        self.leftover.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    fn read_response(&mut self) -> std::io::Result<HttpResponse> {
        let head_end = loop {
            if let Some(i) = self.leftover.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            if self.fill()? == 0 {
                return Err(bad_response("connection closed mid-response"));
            }
        };
        let head = String::from_utf8(self.leftover[..head_end - 4].to_vec())
            .map_err(|_| bad_response("response head not UTF-8"))?;
        self.leftover.drain(..head_end);

        let mut lines = head.split("\r\n");
        let status_line = lines.next().ok_or_else(|| bad_response("empty response"))?;
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| bad_response("malformed status line"))?;
        let mut headers = Vec::new();
        for line in lines {
            let (name, value) = line
                .split_once(':')
                .ok_or_else(|| bad_response("malformed response header"))?;
            headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
        }
        let length: usize = headers
            .iter()
            .find(|(n, _)| n == "content-length")
            .and_then(|(_, v)| v.parse().ok())
            .ok_or_else(|| bad_response("missing content-length"))?;
        while self.leftover.len() < length {
            if self.fill()? == 0 {
                return Err(bad_response("connection closed mid-body"));
            }
        }
        let body = self.leftover.drain(..length).collect();
        Ok(HttpResponse {
            status,
            headers,
            body,
        })
    }
}
