//! Typed per-request deadlines and their wire propagation.
//!
//! Clients send `X-Mb-Deadline-Ms: N` — "this answer is worthless to me
//! more than N milliseconds after I sent the request". The server anchors
//! that budget at the earliest moment it can observe (connection accept for
//! the first request of a session, first byte of the request otherwise),
//! carries the resulting [`Deadline`] with the work, and **sheds** anything
//! already expired at dequeue instead of scoring it: under overload, worker
//! time goes to requests whose callers are still listening. Shed responses
//! carry the v1 `deadline_exceeded` envelope code so retrying clients can
//! distinguish "too slow" from "broken".
//!
//! The resilient client ([`crate::client::ResilientClient`]) populates the
//! header from its per-call budget, so deadlines propagate end to end
//! through every tier that uses it.

use std::time::{Duration, Instant};

use crate::http::HttpRequest;

/// The propagation header, lowercase as the parser normalizes names.
pub const DEADLINE_HEADER: &str = "x-mb-deadline-ms";

/// Largest budget a client may declare (1 hour); beyond this is treated as
/// malformed rather than silently saturated.
pub const MAX_DEADLINE_MS: u64 = 3_600_000;

/// An absolute point in time after which a request's answer is useless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `budget` after `anchor`.
    pub fn after(anchor: Instant, budget: Duration) -> Self {
        Self {
            at: anchor + budget,
        }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// How long ago the deadline passed (zero while still live).
    pub fn overdue(&self) -> Duration {
        Instant::now().saturating_duration_since(self.at)
    }

    /// The deadline for `req`: the `X-Mb-Deadline-Ms` budget anchored at
    /// `anchor` when the header is present, else the server-wide `default`
    /// (anchored the same way), else no deadline. A header that is not a
    /// plain integer in `(0, MAX_DEADLINE_MS]` is an error — silently
    /// ignoring it would turn a typo'd budget into "take forever".
    pub fn from_request(
        req: &HttpRequest,
        anchor: Instant,
        default: Option<Duration>,
    ) -> Result<Option<Self>, &'static str> {
        match req.header(DEADLINE_HEADER) {
            Some(raw) => {
                let ms: u64 = raw
                    .trim()
                    .parse()
                    .map_err(|_| "x-mb-deadline-ms must be a positive integer (milliseconds)")?;
                if ms == 0 || ms > MAX_DEADLINE_MS {
                    return Err("x-mb-deadline-ms out of range (1..=3600000)");
                }
                Ok(Some(Self::after(anchor, Duration::from_millis(ms))))
            }
            None => Ok(default.map(|budget| Self::after(anchor, budget))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{Limits, RequestReader};

    fn req(extra_header: &str) -> HttpRequest {
        let bytes = format!("GET / HTTP/1.1\r\n{extra_header}\r\n");
        RequestReader::new(bytes.as_bytes(), Limits::default())
            .next_request()
            .expect("parse")
            .expect("one request")
    }

    #[test]
    fn header_budget_anchored_at_given_instant() {
        let anchor = Instant::now();
        let d = Deadline::from_request(&req("X-Mb-Deadline-Ms: 50\r\n"), anchor, None)
            .expect("valid header")
            .expect("deadline present");
        assert!(!d.expired());
        assert!(d.remaining() <= Duration::from_millis(50));
        // Anchoring in the past consumes the budget.
        let stale = Deadline::from_request(
            &req("X-Mb-Deadline-Ms: 10\r\n"),
            anchor - Duration::from_secs(1),
            None,
        )
        .expect("valid header")
        .expect("deadline present");
        assert!(stale.expired());
        assert!(stale.overdue() >= Duration::from_millis(900));
        assert_eq!(stale.remaining(), Duration::ZERO);
    }

    #[test]
    fn default_applies_only_without_header() {
        let anchor = Instant::now();
        let default = Some(Duration::from_secs(5));
        let d = Deadline::from_request(&req(""), anchor, default)
            .expect("no header is fine")
            .expect("default applied");
        assert!(!d.expired());
        assert!(Deadline::from_request(&req(""), anchor, None)
            .expect("no header, no default")
            .is_none());
        // Header wins over the default.
        let d = Deadline::from_request(&req("X-Mb-Deadline-Ms: 1\r\n"), anchor, default)
            .expect("valid")
            .expect("present");
        assert!(d.remaining() <= Duration::from_millis(1));
    }

    #[test]
    fn malformed_budgets_are_rejected_not_ignored() {
        let anchor = Instant::now();
        for bad in [
            "X-Mb-Deadline-Ms: nope\r\n",
            "X-Mb-Deadline-Ms: -3\r\n",
            "X-Mb-Deadline-Ms: 0\r\n",
            "X-Mb-Deadline-Ms: 3600001\r\n",
            "X-Mb-Deadline-Ms: 1.5\r\n",
        ] {
            assert!(
                Deadline::from_request(&req(bad), anchor, None).is_err(),
                "{bad:?} accepted"
            );
        }
    }
}
