//! Strict HTTP/1.1 request parsing and response writing.
//!
//! Network input is adversarial, so the parser is deliberately small and
//! strict: `Content-Length` bodies only (no chunked transfer coding),
//! bounded head/body/header-count limits, and a typed error for every way
//! a request can go wrong. The contract — enforced by the property tests
//! in `tests/http_parser.rs` — is that arbitrary bytes, arbitrarily
//! fragmented or cut, **never panic** the parser: every input either
//! yields a request, a clean close, or an [`HttpError`] that maps to
//! `400`/`408`/`413` (or a silent close for idle timeouts and IO faults).

use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

/// Request/response header carrying the 128-bit trace id (1–32 hex chars;
/// echoed on every response so callers can join outcomes to
/// `/debug/trace`). Lowercase because the parser lowercases header names.
pub const TRACE_ID_HEADER: &str = "x-mb-trace-id";
/// Request header carrying the caller's innermost span id (decimal u64),
/// recorded as the parent of the server's `serve.request` span.
pub const PARENT_SPAN_HEADER: &str = "x-mb-parent-span";
/// Request header (`1` or `true`) asking the tail sampler to retain the
/// trace even when nothing anomalous happened.
pub const SAMPLED_HEADER: &str = "x-mb-sampled";
/// Request header (any value) opting into an `X-Mb-Server-Timing`
/// response header with the queue/parse/score stage breakdown.
pub const SERVER_TIMING_HEADER: &str = "x-mb-server-timing";
/// Request header carrying the idempotency key of a `POST /v1/feedback`
/// batch. The server dedupes by key within the journal window, so a client
/// may safely retry an ambiguous mid-response failure. Overrides the
/// body's `"key"` field when present.
pub const IDEMPOTENCY_HEADER: &str = "x-mb-idempotency-key";

/// Parser resource bounds. Defaults are generous for scoring payloads and
/// small enough that a hostile peer cannot balloon per-connection memory.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (including CRLFs).
    pub max_head_bytes: usize,
    /// Maximum `Content-Length` a request may declare.
    pub max_body_bytes: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Wall-clock cap on reading one whole request (head + body), measured
    /// from its first byte. Per-`read` socket timeouts only bound silence;
    /// this bounds a slowloris peer that drips one byte per timeout window
    /// and would otherwise pin a worker indefinitely.
    pub max_request_wall: Duration,
}

impl Default for Limits {
    fn default() -> Self {
        Self {
            max_head_bytes: 8 * 1024,
            max_body_bytes: 256 * 1024,
            max_headers: 64,
            max_request_wall: Duration::from_secs(10),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method, as sent (e.g. `GET`).
    pub method: String,
    /// Full request target (path plus optional `?query`).
    pub target: String,
    /// Headers with names lowercased, in arrival order.
    pub headers: Vec<(String, String)>,
    /// Request body (`Content-Length` bytes; empty without the header).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl HttpRequest {
    /// The target with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target.split('?').next().unwrap_or(&self.target)
    }

    /// First header with this (lowercase) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// First `?key=value` query parameter with this name, unescaped as-is.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        let query = self.target.split_once('?')?.1;
        query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
            (k == name).then_some(v)
        })
    }
}

/// Everything that can go wrong while reading one request.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request (syntax, truncation mid-message, unsupported
    /// framing). Answer `400` and close.
    BadRequest(&'static str),
    /// Head or declared body over the configured limits. Answer `413`.
    TooLarge(&'static str),
    /// The socket read timed out. `mid_request` distinguishes a stalled
    /// partial request (answer `408`) from an idle keep-alive connection
    /// (close silently).
    Timeout {
        /// True when bytes of an unfinished request had already arrived.
        mid_request: bool,
    },
    /// Reading one request exceeded [`Limits::max_request_wall`] — the
    /// slowloris shape, where bytes keep trickling in but the request never
    /// completes. Answer `408` and close.
    SlowRequest,
    /// The connection failed at the IO layer; close without a response.
    Io(std::io::Error),
}

impl HttpError {
    /// The status code to answer with, or `None` when the connection
    /// should simply close (idle timeout, dead socket).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::BadRequest(_) => Some(400),
            HttpError::TooLarge(_) => Some(413),
            HttpError::Timeout { mid_request: true } | HttpError::SlowRequest => Some(408),
            HttpError::Timeout { mid_request: false } | HttpError::Io(_) => None,
        }
    }

    /// Human-readable detail for the error body.
    pub fn detail(&self) -> &'static str {
        match self {
            HttpError::BadRequest(d) | HttpError::TooLarge(d) => d,
            HttpError::Timeout { .. } => "request timed out",
            HttpError::SlowRequest => "request read exceeded the wall-clock limit",
            HttpError::Io(_) => "connection error",
        }
    }
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(d) => write!(f, "bad request: {d}"),
            HttpError::TooLarge(d) => write!(f, "request too large: {d}"),
            HttpError::Timeout { mid_request } => {
                write!(f, "timeout (mid_request: {mid_request})")
            }
            HttpError::SlowRequest => f.write_str("request read exceeded the wall-clock limit"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

/// Incremental request reader over any byte stream. Buffers leftovers
/// between calls, so pipelined requests parse correctly.
pub struct RequestReader<R> {
    inner: R,
    buf: Vec<u8>,
    limits: Limits,
    /// When the first byte of the request currently being read arrived;
    /// cleared once the request completes. Drives the slowloris wall cap.
    started: Option<Instant>,
    /// `started` of the most recently *completed* request — the anchor for
    /// per-request deadline math in the server.
    last_started: Option<Instant>,
}

impl<R: Read> RequestReader<R> {
    /// Wrap `inner` with the given limits.
    pub fn new(inner: R, limits: Limits) -> Self {
        Self {
            inner,
            buf: Vec::with_capacity(1024),
            limits,
            started: None,
            last_started: None,
        }
    }

    /// When the first byte of the most recently returned request arrived
    /// (as observed by this reader). `None` before any request completes.
    pub fn last_request_started(&self) -> Option<Instant> {
        self.last_started
    }

    /// Fail with [`HttpError::SlowRequest`] once the in-progress request
    /// has been trickling in longer than the wall cap.
    fn check_wall(&self) -> Result<(), HttpError> {
        match self.started {
            Some(t0) if t0.elapsed() > self.limits.max_request_wall => Err(HttpError::SlowRequest),
            _ => Ok(()),
        }
    }

    /// A full request just left the buffer: remember its start time and
    /// re-anchor `started` for any pipelined bytes already buffered.
    fn finish_request(&mut self) {
        self.last_started = self.started.take();
        if !self.buf.is_empty() {
            self.started = Some(Instant::now());
        }
    }

    /// Read one request. `Ok(None)` means the peer closed cleanly between
    /// requests (normal end of a keep-alive session).
    pub fn next_request(&mut self) -> Result<Option<HttpRequest>, HttpError> {
        if !self.buf.is_empty() && self.started.is_none() {
            self.started = Some(Instant::now());
        }
        // Accumulate until the blank line ending the head.
        let head_end = loop {
            if let Some(i) = find(&self.buf, b"\r\n\r\n") {
                break i + 4;
            }
            if self.buf.len() >= self.limits.max_head_bytes {
                return Err(HttpError::TooLarge("request head over limit"));
            }
            self.check_wall()?;
            if self.fill()? == 0 {
                return if self.buf.is_empty() {
                    Ok(None)
                } else {
                    Err(HttpError::BadRequest("connection closed mid-head"))
                };
            }
        };
        if head_end > self.limits.max_head_bytes {
            return Err(HttpError::TooLarge("request head over limit"));
        }

        let mut req = parse_head(&self.buf[..head_end - 4], &self.limits)?;
        let body_len = body_length(&req, &self.limits)?;
        self.buf.drain(..head_end);

        while self.buf.len() < body_len {
            self.check_wall()?;
            match self.fill() {
                Ok(0) => return Err(HttpError::BadRequest("connection closed mid-body")),
                Ok(_) => {}
                Err(HttpError::Timeout { .. }) => {
                    return Err(HttpError::Timeout { mid_request: true })
                }
                Err(e) => return Err(e),
            }
        }
        req.body = self.buf.drain(..body_len).collect();
        self.finish_request();
        Ok(Some(req))
    }

    /// Pop one more *already-buffered* pipelined request, without touching
    /// the socket. Returns the request only when a complete head + body is
    /// sitting in the buffer **and** `accept` (which sees the parsed head
    /// with an empty body) approves it; in every other case — incomplete
    /// bytes, a parse error, or a rejected request — the buffer is left
    /// untouched for the next [`RequestReader::next_request`] call to
    /// handle normally.
    ///
    /// This is what makes opportunistic micro-batching safe: the server
    /// can drain a burst of pipelined `/v1/score` requests into one engine
    /// pass, while anything it does not want to coalesce (other endpoints,
    /// malformed requests, half-arrived bytes) takes the ordinary path
    /// with ordinary error handling.
    pub fn next_buffered_if(
        &mut self,
        accept: impl FnOnce(&HttpRequest) -> bool,
    ) -> Option<HttpRequest> {
        let head_end = find(&self.buf, b"\r\n\r\n")? + 4;
        if head_end > self.limits.max_head_bytes {
            return None;
        }
        let mut req = parse_head(&self.buf[..head_end - 4], &self.limits).ok()?;
        let body_len = body_length(&req, &self.limits).ok()?;
        if self.buf.len() < head_end + body_len {
            return None;
        }
        if !accept(&req) {
            return None;
        }
        self.buf.drain(..head_end);
        req.body = self.buf.drain(..body_len).collect();
        self.finish_request();
        Some(req)
    }

    /// One `read` into the buffer; maps timeouts to [`HttpError::Timeout`]
    /// (mid-request iff bytes are already pending) and retries EINTR.
    fn fill(&mut self) -> Result<usize, HttpError> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.inner.read(&mut chunk) {
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    if n > 0 && self.started.is_none() {
                        self.started = Some(Instant::now());
                    }
                    return Ok(n);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    return Err(HttpError::Timeout {
                        mid_request: !self.buf.is_empty(),
                    })
                }
                Err(e) => return Err(HttpError::Io(e)),
            }
        }
    }
}

/// First offset of `needle` in `haystack`.
fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
    haystack.windows(needle.len()).position(|w| w == needle)
}

/// RFC 9110 `token` characters (header names, methods).
fn is_token_byte(b: u8) -> bool {
    matches!(b,
        b'!' | b'#' | b'$' | b'%' | b'&' | b'\'' | b'*' | b'+' | b'-' | b'.' | b'^' | b'_'
        | b'`' | b'|' | b'~' | b'0'..=b'9' | b'a'..=b'z' | b'A'..=b'Z')
}

/// Parse request line + headers (the bytes before the blank line).
fn parse_head(head: &[u8], limits: &Limits) -> Result<HttpRequest, HttpError> {
    let head = std::str::from_utf8(head)
        .map_err(|_| HttpError::BadRequest("request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines
        .next()
        .ok_or(HttpError::BadRequest("empty request head"))?;

    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequest("malformed request line")),
    };
    if !method.bytes().all(is_token_byte) {
        return Err(HttpError::BadRequest("malformed method"));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(
            "request target must be absolute path",
        ));
    }
    let http11 = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        _ => return Err(HttpError::BadRequest("unsupported HTTP version")),
    };

    let mut headers = Vec::new();
    for line in lines {
        if headers.len() >= limits.max_headers {
            return Err(HttpError::TooLarge("too many headers"));
        }
        if line.starts_with(' ') || line.starts_with('\t') {
            return Err(HttpError::BadRequest("obsolete header folding"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::BadRequest("malformed header line"))?;
        if name.is_empty() || !name.bytes().all(is_token_byte) {
            return Err(HttpError::BadRequest("malformed header name"));
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let connection = headers
        .iter()
        .find(|(n, _)| n == "connection")
        .map(|(_, v)| v.to_ascii_lowercase());
    let keep_alive = match connection.as_deref() {
        Some(v) if v.split(',').any(|t| t.trim() == "close") => false,
        Some(v) if v.split(',').any(|t| t.trim() == "keep-alive") => true,
        _ => http11,
    };

    Ok(HttpRequest {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
        keep_alive,
    })
}

/// Validate framing headers and return the declared body length.
fn body_length(req: &HttpRequest, limits: &Limits) -> Result<usize, HttpError> {
    if req.header("transfer-encoding").is_some() {
        return Err(HttpError::BadRequest(
            "transfer-encoding unsupported (use content-length)",
        ));
    }
    let mut declared: Option<u64> = None;
    for (name, value) in &req.headers {
        if name != "content-length" {
            continue;
        }
        let parsed: u64 = value
            .parse()
            .map_err(|_| HttpError::BadRequest("malformed content-length"))?;
        match declared {
            Some(prev) if prev != parsed => {
                return Err(HttpError::BadRequest("conflicting content-length headers"))
            }
            _ => declared = Some(parsed),
        }
    }
    let len = declared.unwrap_or(0);
    if len > limits.max_body_bytes as u64 {
        return Err(HttpError::TooLarge("request body over limit"));
    }
    Ok(len as usize)
}

// --- responses -----------------------------------------------------------

/// A response ready to serialize: status, body, and framing headers.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body bytes.
    pub body: Vec<u8>,
    /// Optional `Retry-After` seconds (backpressure rejections).
    pub retry_after: Option<u32>,
    /// Extra response headers (trace id echo, `X-Mb-Server-Timing`).
    /// Names must be valid header tokens; values must be CRLF-free.
    pub extra_headers: Vec<(&'static str, String)>,
    /// Whether to answer `Connection: close` and end the session.
    pub close: bool,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            retry_after: None,
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into_bytes(),
            retry_after: None,
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// Set `Retry-After` (seconds).
    pub fn retry_after(mut self, secs: u32) -> Self {
        self.retry_after = Some(secs);
        self
    }

    /// Mark the connection for closing after this response.
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }

    /// Attach an extra response header. The value is sanitized: CR/LF are
    /// replaced with spaces so a hostile echo cannot split the response.
    pub fn with_header(mut self, name: &'static str, value: String) -> Self {
        let value = if value.contains(['\r', '\n']) {
            value.replace(['\r', '\n'], " ")
        } else {
            value
        };
        self.extra_headers.push((name, value));
        self
    }

    /// Serialize head + body to `w`.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        use std::fmt::Write as _;
        let mut head = String::with_capacity(128);
        let _ = write!(
            head,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
            self.status,
            reason(self.status),
            self.content_type,
            self.body.len(),
            if self.close { "close" } else { "keep-alive" },
        );
        if let Some(secs) = self.retry_after {
            let _ = write!(head, "Retry-After: {secs}\r\n");
        }
        for (name, value) in &self.extra_headers {
            let _ = write!(head, "{name}: {value}\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Reason phrase for the status codes this server emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Content Too Large",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// The response (if any) for a parse error: `None` means close silently.
/// Bodies are coded [`ErrorEnvelope`]s like every other non-2xx response.
///
/// [`ErrorEnvelope`]: microbrowse_api::v1::ErrorEnvelope
pub fn error_response(err: &HttpError) -> Option<Response> {
    use microbrowse_api::v1::{self, ErrorEnvelope};
    let status = err.status()?;
    let code = match status {
        400 => v1::CODE_BAD_REQUEST,
        413 => v1::CODE_TOO_LARGE,
        _ => v1::CODE_TIMEOUT,
    };
    let body = ErrorEnvelope::with_code(err.detail(), code).to_json();
    Some(Response::json(status, body).closing())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(input: &[u8]) -> Result<Option<HttpRequest>, HttpError> {
        RequestReader::new(input, Limits::default()).next_request()
    }

    #[test]
    fn parses_get_and_post() {
        let req = read_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert!(req.keep_alive);
        assert!(req.body.is_empty());

        let req = read_all(b"POST /v1/score HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd")
            .unwrap()
            .unwrap();
        assert_eq!(req.body, b"abcd");
        assert_eq!(req.header("content-length"), Some("4"));
    }

    #[test]
    fn pipelined_requests_parse_in_order() {
        let bytes = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nxyGET /b HTTP/1.1\r\n\r\n";
        let mut reader = RequestReader::new(&bytes[..], Limits::default());
        let first = reader.next_request().unwrap().unwrap();
        assert_eq!((first.path(), first.body.as_slice()), ("/a", &b"xy"[..]));
        let second = reader.next_request().unwrap().unwrap();
        assert_eq!(second.path(), "/b");
        assert!(reader.next_request().unwrap().is_none());
    }

    #[test]
    fn buffered_pop_consumes_only_accepted_complete_requests() {
        let bytes = b"POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy\
                      POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nzw\
                      GET /b HTTP/1.1\r\n\r\n\
                      POST /a HTTP/1.1\r\nContent-Length: 9\r\n\r\ntrunc";
        let mut reader = RequestReader::new(&bytes[..], Limits::default());
        // Prime the buffer through the normal path.
        let first = reader.next_request().unwrap().unwrap();
        assert_eq!(first.body, b"xy");
        // Second /a is complete and accepted.
        let second = reader.next_buffered_if(|r| r.path() == "/a").unwrap();
        assert_eq!(second.body, b"zw");
        // /b is complete but rejected by the predicate: left in place…
        assert!(reader.next_buffered_if(|r| r.path() == "/a").is_none());
        // …and still served by the ordinary path.
        let third = reader.next_request().unwrap().unwrap();
        assert_eq!(third.path(), "/b");
        // The truncated request is never popped from the buffer alone.
        assert!(reader.next_buffered_if(|_| true).is_none());
        assert!(matches!(
            reader.next_request(),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn clean_eof_and_truncations() {
        assert!(read_all(b"").unwrap().is_none());
        assert!(matches!(
            read_all(b"GET / HTTP/1.1\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(
            read_all(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::BadRequest(_))
        ));
    }

    #[test]
    fn rejects_bad_framing() {
        for (bytes, want_413) in [
            (&b"GET / HTTP/2\r\n\r\n"[..], false),
            (&b"GET /\r\n\r\n"[..], false),
            (&b"GET relative HTTP/1.1\r\n\r\n"[..], false),
            (&b"GET / HTTP/1.1\r\nbad header\r\n\r\n"[..], false),
            (&b"GET / HTTP/1.1\r\n folded: x\r\n\r\n"[..], false),
            (
                &b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"[..],
                false,
            ),
            (
                &b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"[..],
                false,
            ),
            (
                &b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\n"[..],
                false,
            ),
            (
                &b"POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n"[..],
                true,
            ),
        ] {
            let got = read_all(bytes);
            match got {
                Err(HttpError::BadRequest(_)) if !want_413 => {}
                Err(HttpError::TooLarge(_)) if want_413 => {}
                other => panic!("{:?} -> {:?}", String::from_utf8_lossy(bytes), other),
            }
        }
    }

    #[test]
    fn oversized_head_is_413() {
        let mut bytes = b"GET / HTTP/1.1\r\n".to_vec();
        bytes.extend(vec![b'a'; Limits::default().max_head_bytes]);
        assert!(matches!(read_all(&bytes), Err(HttpError::TooLarge(_))));
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = read_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(!req.keep_alive);
        let req = read_all(b"GET / HTTP/1.0\r\n\r\n").unwrap().unwrap();
        assert!(!req.keep_alive);
        let req = read_all(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
            .unwrap()
            .unwrap();
        assert!(req.keep_alive);
    }

    #[test]
    fn responses_serialize_with_framing() {
        let mut out = Vec::new();
        Response::json(200, "{}".into()).write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));

        let mut out = Vec::new();
        Response::text(503, "busy".into())
            .retry_after(1)
            .closing()
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    /// Delivers `data` one byte per read, sleeping `delay` before each —
    /// the slowloris shape over an in-memory stream.
    struct Trickle {
        data: Vec<u8>,
        pos: usize,
        delay: Duration,
    }

    impl Read for Trickle {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos >= self.data.len() {
                return Ok(0);
            }
            std::thread::sleep(self.delay);
            buf[0] = self.data[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn slow_request_hits_wall_clock_cap() {
        let limits = Limits {
            max_request_wall: Duration::from_millis(40),
            ..Limits::default()
        };
        let trickle = Trickle {
            data: b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n".to_vec(),
            pos: 0,
            delay: Duration::from_millis(10),
        };
        let mut reader = RequestReader::new(trickle, limits);
        assert!(matches!(reader.next_request(), Err(HttpError::SlowRequest)));
    }

    #[test]
    fn fast_request_is_untouched_by_wall_cap_and_stamps_start() {
        let limits = Limits {
            max_request_wall: Duration::from_millis(500),
            ..Limits::default()
        };
        let trickle = Trickle {
            data: b"GET / HTTP/1.1\r\n\r\n".to_vec(),
            pos: 0,
            delay: Duration::from_millis(1),
        };
        let mut reader = RequestReader::new(trickle, limits);
        assert!(reader.last_request_started().is_none());
        let req = reader.next_request().unwrap().unwrap();
        assert_eq!(req.path(), "/");
        let started = reader.last_request_started().expect("start stamped");
        assert!(started.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn error_responses_map_statuses() {
        assert_eq!(
            error_response(&HttpError::BadRequest("x")).map(|r| r.status),
            Some(400)
        );
        assert_eq!(
            error_response(&HttpError::TooLarge("x")).map(|r| r.status),
            Some(413)
        );
        assert_eq!(
            error_response(&HttpError::Timeout { mid_request: true }).map(|r| r.status),
            Some(408)
        );
        assert_eq!(
            error_response(&HttpError::SlowRequest).map(|r| r.status),
            Some(408)
        );
        assert!(error_response(&HttpError::Timeout { mid_request: false }).is_none());
        assert!(error_response(&HttpError::Io(std::io::Error::other("x"))).is_none());
        // Every answered parse error carries a machine-readable code.
        let body = error_response(&HttpError::SlowRequest).unwrap().body;
        let env =
            microbrowse_api::v1::ErrorEnvelope::from_json(std::str::from_utf8(&body).unwrap())
                .unwrap();
        assert!(env.has_code(microbrowse_api::v1::CODE_TIMEOUT));
    }

    #[test]
    fn query_params_parse_without_touching_path() {
        let req = read_all(b"GET /debug/trace?last=5&raw HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/debug/trace");
        assert_eq!(req.query_param("last"), Some("5"));
        assert_eq!(req.query_param("raw"), Some(""));
        assert_eq!(req.query_param("missing"), None);
        let bare = read_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(bare.query_param("last"), None);
    }

    #[test]
    fn extra_headers_are_written_and_sanitized() {
        let resp = Response::json(200, "{}".to_owned())
            .with_header("X-Mb-Trace-Id", "abc123".to_owned())
            .with_header("X-Mb-Server-Timing", "evil\r\nInjected: 1".to_owned());
        let mut out = Vec::new();
        resp.write_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("X-Mb-Trace-Id: abc123\r\n"), "{text}");
        assert!(
            text.contains("X-Mb-Server-Timing: evil  Injected: 1\r\n"),
            "{text}"
        );
        assert!(
            !text.contains("\r\nInjected:"),
            "header splitting must be impossible"
        );
    }
}
