//! `microbrowse-server` — the network face of the serve path.
//!
//! A std-only (zero external dependencies) threaded HTTP/1.1 server that
//! exposes the pairwise snippet scorer over loopback or LAN:
//!
//! * `POST /v1/score` — score one creative pair (`{"r": "...", "s": "..."}`).
//! * `POST /v1/rank` — rank creatives best-first (`{"creatives": [...]}`).
//! * `POST /v1/batch` — score a JSON array of pairs in one engine pass;
//!   arrays over `--max-batch` answer `413`.
//! * `GET /healthz` — slot generations, fidelity, queue depth; `503` when
//!   degraded or draining.
//! * `GET /metrics` — Prometheus text dump of the `microbrowse-obs`
//!   registry.
//! * `GET /version` — crate name, version, and enabled capabilities.
//! * `GET /debug/trace` — recently retained anomalous traces from the
//!   in-process flight recorder (tail sampling: slow / errored / shed /
//!   degraded / force-sampled requests).
//! * `GET /debug/requests` — recent access-log ring with per-stage
//!   (queue/parse/score/write) latency breakdown.
//!
//! Distributed tracing: callers may send `X-Mb-Trace-Id` (32 hex chars)
//! and `X-Mb-Parent-Span`; the server adopts them so one trace id threads
//! client → accept → queue wait → worker → scoring engine. Every response
//! echoes `X-Mb-Trace-Id` (minting an id when the caller sent none), so
//! any outcome — including 503s shed from the accept thread — can be
//! joined to `/debug/trace`.
//!
//! Architecture (DESIGN.md §11): a strict bounded HTTP parser feeds an
//! accept loop that pushes connections onto a **bounded queue** drained by
//! a fixed worker pool — saturation answers `503 Retry-After` immediately
//! instead of queueing unboundedly. A background thread polls the
//! [`ArtifactSlot`](microbrowse_store::ArtifactSlot) manifests and
//! **hot-swaps** a freshly loaded `Arc<ServingBundle>` with zero downtime.
//! Shutdown drains in-flight sessions up to a deadline and reports
//! drained/aborted counts.
//!
//! Every request and response body is a [`microbrowse_api::v1`] wire type —
//! this crate contains no ad-hoc JSON shapes. Workers also coalesce bursts
//! of pipelined `/v1/score` requests into one
//! [`Scorer::score_batch`](microbrowse_core::serve::Scorer::score_batch)
//! pass (micro-batching), which `/metrics` reports through the
//! `microbrowse_batch_*` counters and the `microbrowse_batch_size`
//! histogram.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod accesslog;
pub mod client;
pub mod deadline;
pub mod http;
pub mod queue;
pub mod server;
pub mod state;

pub use server::{
    start, BundleSource, DrainReport, OnlineConfig, ServerConfig, ServerHandle,
    HTTP_METRIC_COUNTERS, HTTP_METRIC_HISTOGRAMS, POSCLASS_SLOT_NAME,
};
pub use state::{ReloadSource, ServeState};
