//! Bounded MPMC work queue (mutex + condvar, std only).
//!
//! The accept loop pushes accepted connections with [`Bounded::try_push`],
//! which **fails immediately when full** — that failure is the server's
//! backpressure signal (the caller answers `503 Retry-After`). Workers
//! block in [`Bounded::pop_timeout`] with a short timeout so they can
//! notice shutdown flags between items.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed for shutdown; the item is handed back.
    Closed(T),
}

/// What a timed pop produced.
#[derive(Debug)]
pub enum Popped<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between the accept loop and the worker pool.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// An empty queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A panic while holding this lock is already a bug elsewhere;
        // serving should continue rather than cascade the poison.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue without blocking. Returns the new depth, or the item back
    /// when full/closed.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue, waiting up to `timeout` for an item.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None if inner.closed => Popped::Closed,
                    None => Popped::TimedOut,
                };
            }
        }
    }

    /// Apply `f` to the item at the front of the queue (the next one a
    /// worker will pop), without removing it. `None` when empty. Used to
    /// read the age of the oldest queued request for `/healthz` and the
    /// reaper without exposing the guard.
    pub fn peek_front_map<U>(&self, f: impl FnOnce(&T) -> U) -> Option<U> {
        self.lock().items.front().map(f)
    }

    /// Pop the front item only when `pred` approves it (e.g. "older than
    /// the queue timeout"). Never blocks; leaves the queue untouched when
    /// empty or when `pred` declines. This is how the reaper sheds stale
    /// entries without racing workers for fresh ones.
    pub fn pop_front_if(&self, pred: impl FnOnce(&T) -> bool) -> Option<T> {
        let mut inner = self.lock();
        if pred(inner.items.front()?) {
            inner.items.pop_front()
        } else {
            None
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Refuse new pushes and wake every waiting popper. Queued items stay
    /// poppable until drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Take everything still queued (shutdown accounting for never-served
    /// connections).
    pub fn drain(&self) -> Vec<T> {
        self.lock().items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).ok(), Some(1));
        assert_eq!(q.try_push(2).ok(), Some(2));
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item(1)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item(2)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::TimedOut
        ));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = Bounded::new(4);
        q.try_push("a").ok();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item("a")
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Closed
        ));
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(Bounded::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Popped::Item(v) => got.push(v),
                        Popped::TimedOut => {}
                        Popped::Closed => return got,
                    }
                }
            })
        };
        for i in 0..100 {
            loop {
                match q.try_push(i) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("closed early"),
                }
            }
        }
        q.close();
        let got = consumer.join().expect("consumer");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drain_returns_leftovers() {
        let q = Bounded::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.drain(), vec![1, 2]);
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_conditional_pop_respect_the_front() {
        let q = Bounded::new(4);
        assert_eq!(q.peek_front_map(|&v: &i32| v), None);
        q.try_push(7).ok();
        q.try_push(8).ok();
        assert_eq!(q.peek_front_map(|&v| v), Some(7));
        // Declined predicate leaves the queue untouched.
        assert_eq!(q.pop_front_if(|&v| v > 100), None);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop_front_if(|&v| v == 7), Some(7));
        assert_eq!(q.peek_front_map(|&v| v), Some(8));
    }

    /// Regression: a queue filled to capacity and then closed must still
    /// hand every queued item to poppers and then report `Closed` — no
    /// popper may wait forever on a full-then-closed queue.
    #[test]
    fn full_then_closed_never_strands_a_popper() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let q = Arc::new(Bounded::new(8));
        for i in 0..8 {
            q.try_push(i).expect("fill to cap");
        }
        let done = Arc::new(AtomicUsize::new(0));
        let popped = Arc::new(AtomicUsize::new(0));
        let poppers: Vec<_> = (0..4)
            .map(|_| {
                let (q, done, popped) = (Arc::clone(&q), Arc::clone(&done), Arc::clone(&popped));
                std::thread::spawn(move || loop {
                    match q.pop_timeout(Duration::from_millis(20)) {
                        Popped::Item(_) => {
                            popped.fetch_add(1, Ordering::Relaxed);
                        }
                        Popped::TimedOut => {}
                        Popped::Closed => {
                            done.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                })
            })
            .collect();
        q.close();
        // Every popper must finish well within the deadline; a strand shows
        // up as a count below 4 rather than a hung test.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while done.load(Ordering::Relaxed) < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(done.load(Ordering::Relaxed), 4, "stranded popper(s)");
        assert_eq!(popped.load(Ordering::Relaxed), 8, "items lost at close");
        for h in poppers {
            h.join().expect("popper");
        }
    }

    /// Close racing concurrent pushes and pops, across many interleavings
    /// (staggered by seed-derived delays): no item is both refused and
    /// dropped, everything pushed is either popped or drained, and every
    /// thread terminates.
    #[test]
    fn close_racing_push_and_pop_loses_nothing() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for seed in 0..24u64 {
            let q = Arc::new(Bounded::new(4));
            let accepted = Arc::new(AtomicUsize::new(0));
            let popped = Arc::new(AtomicUsize::new(0));
            let pushers: Vec<_> = (0..2)
                .map(|t| {
                    let (q, accepted) = (Arc::clone(&q), Arc::clone(&accepted));
                    std::thread::spawn(move || {
                        for i in 0..64 {
                            match q.try_push((t, i)) {
                                Ok(_) => {
                                    accepted.fetch_add(1, Ordering::SeqCst);
                                }
                                Err(PushError::Full(_)) => std::thread::yield_now(),
                                Err(PushError::Closed(_)) => return,
                            }
                        }
                    })
                })
                .collect();
            let poppers: Vec<_> = (0..2)
                .map(|_| {
                    let (q, popped) = (Arc::clone(&q), Arc::clone(&popped));
                    std::thread::spawn(move || loop {
                        match q.pop_timeout(Duration::from_millis(10)) {
                            Popped::Item(_) => {
                                popped.fetch_add(1, Ordering::SeqCst);
                            }
                            Popped::TimedOut => {}
                            Popped::Closed => return,
                        }
                    })
                })
                .collect();
            // Stagger the close differently per seed to vary interleaving.
            std::thread::sleep(Duration::from_micros(50 * (seed % 7)));
            q.close();
            for h in pushers.into_iter().chain(poppers) {
                h.join().expect("thread");
            }
            let leftover = q.drain().len();
            assert_eq!(
                popped.load(Ordering::SeqCst) + leftover,
                accepted.load(Ordering::SeqCst),
                "seed {seed}: accepted items neither popped nor drained"
            );
            // Closed queues refuse new work and report Closed to poppers.
            assert!(matches!(q.try_push((9, 9)), Err(PushError::Closed(_))));
            assert!(matches!(
                q.pop_timeout(Duration::from_millis(1)),
                Popped::Closed
            ));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;
    use std::time::Duration;

    /// One scheduled queue operation.
    #[derive(Debug, Clone)]
    enum Op {
        Push(u8),
        Pop,
        Close,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            4 => any::<u8>().prop_map(Op::Push),
            4 => Just(Op::Pop),
            1 => Just(Op::Close),
        ]
    }

    proptest! {
        /// Model check: any single-threaded schedule of push/pop/close
        /// behaves exactly like a VecDeque with a cap and a closed flag —
        /// including schedules that close mid-traffic and keep operating.
        #[test]
        fn schedules_match_the_model(
            cap in 1usize..5,
            ops in proptest::collection::vec(op_strategy(), 0..64),
        ) {
            let q = Bounded::new(cap);
            let mut model: VecDeque<u8> = VecDeque::new();
            let mut closed = false;
            for op in ops {
                match op {
                    Op::Push(v) => {
                        let got = q.try_push(v);
                        if closed {
                            prop_assert!(matches!(got, Err(PushError::Closed(_))));
                        } else if model.len() >= cap {
                            prop_assert!(matches!(got, Err(PushError::Full(_))));
                        } else {
                            prop_assert!(got.is_ok());
                            model.push_back(v);
                        }
                    }
                    Op::Pop => {
                        let got = q.pop_timeout(Duration::from_millis(1));
                        match model.pop_front() {
                            Some(want) => match got {
                                Popped::Item(v) => prop_assert_eq!(v, want),
                                other => prop_assert!(false, "wanted item, got {:?}", other),
                            },
                            None if closed => {
                                prop_assert!(matches!(got, Popped::Closed))
                            }
                            None => prop_assert!(matches!(got, Popped::TimedOut)),
                        }
                    }
                    Op::Close => {
                        q.close();
                        closed = true;
                    }
                }
                prop_assert_eq!(q.len(), model.len());
                prop_assert_eq!(
                    q.peek_front_map(|&v| v),
                    model.front().copied()
                );
            }
        }
    }
}
