//! Bounded MPMC work queue (mutex + condvar, std only).
//!
//! The accept loop pushes accepted connections with [`Bounded::try_push`],
//! which **fails immediately when full** — that failure is the server's
//! backpressure signal (the caller answers `503 Retry-After`). Workers
//! block in [`Bounded::pop_timeout`] with a short timeout so they can
//! notice shutdown flags between items.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed for shutdown; the item is handed back.
    Closed(T),
}

/// What a timed pop produced.
#[derive(Debug)]
pub enum Popped<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed and fully drained.
    Closed,
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded FIFO shared between the accept loop and the worker pool.
pub struct Bounded<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    cap: usize,
}

impl<T> Bounded<T> {
    /// An empty queue holding at most `cap` items (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            inner: Mutex::new(Inner {
                items: VecDeque::with_capacity(cap.max(1)),
                closed: false,
            }),
            ready: Condvar::new(),
            cap: cap.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Inner<T>> {
        // A panic while holding this lock is already a bug elsewhere;
        // serving should continue rather than cascade the poison.
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Enqueue without blocking. Returns the new depth, or the item back
    /// when full/closed.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.cap {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        let depth = inner.items.len();
        drop(inner);
        self.ready.notify_one();
        Ok(depth)
    }

    /// Dequeue, waiting up to `timeout` for an item.
    pub fn pop_timeout(&self, timeout: Duration) -> Popped<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Popped::Item(item);
            }
            if inner.closed {
                return Popped::Closed;
            }
            let (guard, wait) = self
                .ready
                .wait_timeout(inner, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            inner = guard;
            if wait.timed_out() {
                return match inner.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None if inner.closed => Popped::Closed,
                    None => Popped::TimedOut,
                };
            }
        }
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Refuse new pushes and wake every waiting popper. Queued items stay
    /// poppable until drained.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// Take everything still queued (shutdown accounting for never-served
    /// connections).
    pub fn drain(&self) -> Vec<T> {
        self.lock().items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1).ok(), Some(1));
        assert_eq!(q.try_push(2).ok(), Some(2));
        assert!(matches!(q.try_push(3), Err(PushError::Full(3))));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item(1)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item(2)
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::TimedOut
        ));
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q = Bounded::new(4);
        q.try_push("a").ok();
        q.close();
        assert!(matches!(q.try_push("b"), Err(PushError::Closed("b"))));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Item("a")
        ));
        assert!(matches!(
            q.pop_timeout(Duration::from_millis(1)),
            Popped::Closed
        ));
    }

    #[test]
    fn cross_thread_handoff() {
        let q = Arc::new(Bounded::new(8));
        let consumer = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || {
                let mut got = Vec::new();
                loop {
                    match q.pop_timeout(Duration::from_millis(200)) {
                        Popped::Item(v) => got.push(v),
                        Popped::TimedOut => {}
                        Popped::Closed => return got,
                    }
                }
            })
        };
        for i in 0..100 {
            loop {
                match q.try_push(i) {
                    Ok(_) => break,
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("closed early"),
                }
            }
        }
        q.close();
        let got = consumer.join().expect("consumer");
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn drain_returns_leftovers() {
        let q = Bounded::new(4);
        q.try_push(1).ok();
        q.try_push(2).ok();
        q.close();
        assert_eq!(q.drain(), vec![1, 2]);
        assert!(q.is_empty());
    }
}
