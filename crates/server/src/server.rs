//! The threaded HTTP server: accept loop → bounded queue → worker pool,
//! with hot reload and graceful drain.
//!
//! ```text
//!              ┌────────────┐   try_push    ┌─────────────┐
//!  clients ──▶ │ accept loop │ ───────────▶ │ bounded queue│ ──▶ workers × N
//!              └────────────┘   full? 503   └─────────────┘        │
//!                                                                  ▼
//!  slot dir ──▶ reload thread ── Arc-swap ──▶ ServeState ──▶ Scorer per
//!               (manifest poll)               (epoch++)      connection-epoch
//! ```
//!
//! Each worker owns one connection at a time and serves its whole
//! keep-alive session. Between requests it checks the reload epoch and
//! rebuilds its scorer over the freshly swapped bundle when it changed —
//! requests in flight finish on the bundle they started with.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use microbrowse_api::debug::{
    DebugEvent, DebugRequestEntry, DebugRequestsResponse, DebugSpan, DebugStages, DebugTraceEntry,
    DebugTraceResponse, VersionInfo,
};
use microbrowse_api::v1::{
    BatchRequest, BatchResponse, ErrorEnvelope, ExplainRequest, ExplainResponse, FeedbackRequest,
    FeedbackResponse, Fidelity, RankRequest, RankResponse, ScoreRequest, ScoreResponse,
    SpanAttribution, SuggestRequest, SuggestResponse, SuggestedRewrite, SuggestedVariant,
    CODE_BAD_DEADLINE, CODE_BAD_REQUEST, CODE_DEADLINE_EXCEEDED, CODE_INTERNAL,
    CODE_METHOD_NOT_ALLOWED, CODE_NOT_FOUND, CODE_OVERLOADED, CODE_TOO_LARGE, CODE_UNAVAILABLE,
};
use microbrowse_core::error::MbError;
use microbrowse_core::explain::explain_pair;
use microbrowse_core::serve::{Scorer, Scratch, ServingBundle, MODEL_SLOT_NAME, STATS_SLOT_NAME};
use microbrowse_core::suggest::{suggest as beam_suggest, SuggestConfig, Suggestion};
use microbrowse_obs as obs;
use microbrowse_obs::flight::{
    FlightConfig, FlightRecorder, PromoteReason, RetainedTrace, TraceSummary,
};
use microbrowse_obs::json::JsonObject;
use microbrowse_obs::trace::{format_trace_id, TraceContext};
use microbrowse_online::{Append, Journal, OnlineError, OnlineLearner};
use microbrowse_store::{file as stats_file, ArtifactSlot};
use microbrowse_text::Snippet;

use crate::accesslog::{AccessLog, AccessRecord};
use crate::deadline::{Deadline, DEADLINE_HEADER};
use crate::http::{
    error_response, HttpError, HttpRequest, Limits, RequestReader, Response, IDEMPOTENCY_HEADER,
    PARENT_SPAN_HEADER, SAMPLED_HEADER, SERVER_TIMING_HEADER, TRACE_ID_HEADER,
};
use crate::queue::{Bounded, Popped, PushError};
use crate::state::{reload_loop, ReloadSource, ServeState};

/// Server tuning knobs. The defaults suit tests and small deployments.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Bounded queue depth; pushes beyond it answer `503`.
    pub queue_depth: usize,
    /// Per-connection socket read timeout (also the idle keep-alive
    /// timeout, and the bound on how long an aborted drain can linger).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// HTTP parser limits.
    pub limits: Limits,
    /// How often the reload thread polls the slot manifests.
    pub reload_poll: Duration,
    /// How long [`ServerHandle::shutdown`] waits for in-flight sessions
    /// before force-aborting them.
    pub drain_deadline: Duration,
    /// Largest `/v1/batch` request accepted (items), and the cap on how
    /// many pipelined `/v1/score` requests one worker coalesces into a
    /// single engine pass. Larger batches answer `413`.
    pub max_batch: usize,
    /// Cap on simultaneously open connections (queued + being served);
    /// beyond it, new connections are answered `503` with the `overloaded`
    /// code from the accept thread. `0` means unlimited.
    pub max_conns: usize,
    /// Deadline budget applied to scoring requests that do not carry an
    /// `X-Mb-Deadline-Ms` header. `None` means only client-sent deadlines
    /// are enforced.
    pub request_deadline: Option<Duration>,
    /// How long an accepted connection may sit in the queue before the
    /// reaper sheds it with a `503 overloaded` instead of letting it go
    /// stale behind pinned workers.
    pub queue_timeout: Duration,
    /// Latency threshold above which the flight recorder's tail sampler
    /// retains a request's trace (`--flight-recorder-slow-ms`).
    pub flight_slow: Duration,
    /// How many promoted (anomalous) traces the flight recorder keeps for
    /// `GET /debug/trace`; oldest evicted first.
    pub flight_retained: usize,
    /// Capacity of the access-log ring behind `GET /debug/requests`.
    pub access_log_size: usize,
    /// Also print one access-log line per request to stderr
    /// (`--access-log`).
    pub access_log_stderr: bool,
    /// Online-learning configuration; `None` disables `POST /v1/feedback`
    /// and the background refitter.
    pub online: Option<OnlineConfig>,
    /// Largest `beam_width` / `max_depth` a `/v1/suggest` request may ask
    /// for (`--max-beam`). Requests over the cap answer `413`.
    pub max_beam: usize,
    /// Largest `top_k` a `/v1/suggest` request may ask for
    /// (`--max-suggestions`). Requests over the cap answer `413`.
    pub max_suggestions: usize,
}

/// Online-learning knobs (`--feedback-journal`, `--refit-interval`).
/// Requires slot-directory artifacts, because refits publish new
/// generations through the same slots the hot-reload poller watches.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Directory holding the crash-safe feedback journal.
    pub journal_dir: PathBuf,
    /// How often the background refitter wakes up to consider a refit.
    pub refit_interval: Duration,
    /// Minimum feedback batches folded since the last refit before a new
    /// refit is attempted (avoids retraining on an unchanged corpus).
    pub min_refit_batches: u64,
}

impl OnlineConfig {
    /// Config with the default cadence (refit every 30 s when at least one
    /// new batch arrived).
    pub fn new(journal_dir: impl Into<PathBuf>) -> Self {
        Self {
            journal_dir: journal_dir.into(),
            refit_interval: Duration::from_secs(30),
            min_refit_batches: 1,
        }
    }
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            queue_depth: 128,
            read_timeout: Duration::from_secs(2),
            write_timeout: Duration::from_secs(2),
            limits: Limits::default(),
            reload_poll: Duration::from_millis(200),
            drain_deadline: Duration::from_secs(5),
            max_batch: 256,
            max_conns: 1024,
            request_deadline: None,
            queue_timeout: Duration::from_secs(4),
            flight_slow: Duration::from_millis(500),
            flight_retained: 256,
            access_log_size: 256,
            access_log_stderr: false,
            online: None,
            max_beam: 32,
            max_suggestions: 32,
        }
    }
}

/// Where the server gets its serving bundle.
pub enum BundleSource {
    /// A fixed in-memory bundle; no hot reload (benchmarks, tests).
    Static(Arc<ServingBundle>),
    /// Load from artifact paths; slot directories hot-reload on new
    /// generations.
    Artifacts(ReloadSource),
}

/// What the drain accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests completed after shutdown began.
    pub drained: u64,
    /// Connections cut off mid-session or never served.
    pub aborted: u64,
}

/// Counters/gauges/histograms the server touches, pre-registered at start
/// so `/metrics` exposes the full alertable surface from the first scrape.
pub const HTTP_METRIC_COUNTERS: &[&str] = &[
    "microbrowse_http_requests_total",
    "microbrowse_http_responses_5xx_total",
    "microbrowse_http_responses_4xx_total",
    "microbrowse_http_rejected_total",
    "microbrowse_http_bad_requests_total",
    "microbrowse_http_connections_total",
    "microbrowse_serve_reloads_total",
    "microbrowse_serve_reload_failures_total",
    "microbrowse_batch_requests_total",
    "microbrowse_batch_items_total",
    "microbrowse_batch_coalesced_total",
    "microbrowse_http_deadline_exceeded_total",
    "microbrowse_http_slow_requests_total",
    "microbrowse_http_conn_limit_rejected_total",
    "microbrowse_http_reaped_total",
    "microbrowse_http_sock_cfg_failed_total",
    "microbrowse_feedback_requests_total",
    "microbrowse_feedback_events_total",
    "microbrowse_feedback_deduped_total",
    "microbrowse_refit_total",
    "microbrowse_refit_failures_total",
];

/// Per-endpoint latency histograms (microseconds), plus the batch-size
/// distribution (items per engine pass, `/v1/batch` and coalesced alike).
pub const HTTP_METRIC_HISTOGRAMS: &[&str] = &[
    "microbrowse_http_score_latency_us",
    "microbrowse_http_rank_latency_us",
    "microbrowse_http_batch_latency_us",
    "microbrowse_http_suggest_latency_us",
    "microbrowse_http_explain_latency_us",
    "microbrowse_http_other_latency_us",
    "microbrowse_batch_size",
    "microbrowse_http_feedback_latency_us",
    "microbrowse_refit_duration_us",
];

/// Releases one slot of the connection cap when the connection ends, no
/// matter which path (served, shed, drained, aborted) ends it.
struct ConnPermit {
    open: Arc<AtomicI64>,
}

impl ConnPermit {
    fn acquire(open: &Arc<AtomicI64>) -> Self {
        let now = open.fetch_add(1, Ordering::SeqCst) + 1;
        obs::gauge!("microbrowse_http_open_conns").set(now);
        Self {
            open: Arc::clone(open),
        }
    }
}

impl Drop for ConnPermit {
    fn drop(&mut self) {
        let now = self.open.fetch_sub(1, Ordering::SeqCst) - 1;
        obs::gauge!("microbrowse_http_open_conns").set(now);
    }
}

/// An accepted connection waiting for (or held by) a worker, timestamped
/// so staleness is observable at dequeue, by the reaper, and in
/// `/healthz` (`queue_age_ms`).
struct QueuedConn {
    stream: TcpStream,
    accepted: Instant,
    _permit: ConnPermit,
}

struct Shared {
    state: ServeState,
    queue: Bounded<QueuedConn>,
    cfg: ServerConfig,
    draining: AtomicBool,
    force_abort: AtomicBool,
    drained: AtomicU64,
    aborted: AtomicU64,
    /// Connections currently open (queued + being served): the `--max-conns`
    /// accounting and the `/healthz` `open_conns` field.
    open_conns: Arc<AtomicI64>,
    /// Always-on flight recorder behind `GET /debug/trace` (also installed
    /// as a trace sink).
    flight: Arc<FlightRecorder>,
    /// Recent-request ring behind `GET /debug/requests`.
    access: AccessLog,
    /// Online-learning state (`POST /v1/feedback` + the refit thread);
    /// `None` when started without [`OnlineConfig`].
    online: Option<Arc<OnlineState>>,
}

/// Everything the feedback endpoint and the refit thread share. The mutex
/// guards the journal + learner pair; provenance counters are atomics so
/// `/healthz` and `/version` read them without touching the lock.
struct OnlineState {
    inner: Mutex<OnlineInner>,
    /// Slot directory the refitter commits model generations into.
    model_dir: PathBuf,
    /// Slot directory the refitter commits folded-stats generations into.
    stats_dir: PathBuf,
    refit_interval: Duration,
    min_refit_batches: u64,
    /// False until the first online refit publishes — the provenance bit.
    origin_online: AtomicBool,
    /// Completed online refits.
    refits: AtomicU64,
    /// Feedback batches folded (including journal replay on restart).
    batches: AtomicU64,
    /// Feedback events folded.
    events: AtomicU64,
    /// Query classes in the per-class position model at the last refit.
    position_classes: AtomicU64,
    /// Model-slot generation the last online refit published.
    last_refit_generation: AtomicU64,
}

struct OnlineInner {
    journal: Journal,
    learner: OnlineLearner,
    /// Batches folded since the refitter last snapshot the learner.
    pending: u64,
}

impl OnlineState {
    fn lock(&self) -> std::sync::MutexGuard<'_, OnlineInner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn origin(&self) -> &'static str {
        if self.origin_online.load(Ordering::Relaxed) {
            "online-refit"
        } else {
            "batch-built"
        }
    }
}

/// A running server. Dropping the handle does **not** stop it; call
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    reload: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
    refit: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Bind, load the initial bundle, and start the accept/worker/reload
/// threads. Instrumentation (obs) is enabled process-wide so `/metrics`
/// observes real traffic.
pub fn start(cfg: ServerConfig, source: BundleSource) -> Result<ServerHandle, MbError> {
    obs::set_enabled(true);
    let registry = obs::metrics::registry();
    for name in HTTP_METRIC_COUNTERS {
        registry.counter(name);
    }
    for name in HTTP_METRIC_HISTOGRAMS {
        registry.histogram(name);
    }
    registry.gauge("microbrowse_http_queue_depth");
    registry.gauge("microbrowse_http_open_conns");
    registry.counter("microbrowse_trace_write_errors_total");
    registry.counter("microbrowse_flight_promoted_total");

    let (bundle, reload_source) = match source {
        BundleSource::Static(bundle) => (bundle, None),
        BundleSource::Artifacts(src) => {
            let bundle = src.builder().load_shared()?;
            let reloadable = src.reloadable();
            (bundle, reloadable.then_some(src))
        }
    };
    let online = match &cfg.online {
        None => None,
        Some(ocfg) => Some(open_online(ocfg, &bundle, reload_source.as_ref())?),
    };

    let listener =
        TcpListener::bind(&cfg.addr).map_err(|e| MbError::io(format!("bind {}", cfg.addr), e))?;
    let addr = listener
        .local_addr()
        .map_err(|e| MbError::io("local_addr", e))?;

    // Always-on flight recorder: installed as a trace sink *alongside* any
    // sink already in place (e.g. the CLI's `--trace-json` JSONL sink), so
    // turning on file tracing never disables `/debug/trace` or vice versa.
    let flight = Arc::new(FlightRecorder::new(FlightConfig {
        retained_cap: cfg.flight_retained,
        ..FlightConfig::default()
    }));
    let sink: Arc<dyn obs::trace::TraceSink> = match obs::trace::installed_sink() {
        Some(existing) => Arc::new(obs::trace::TeeSink::new(vec![
            existing,
            flight.clone() as Arc<dyn obs::trace::TraceSink>,
        ])),
        None => flight.clone(),
    };
    obs::trace::install_sink(sink);

    let access = AccessLog::new(cfg.access_log_size, cfg.access_log_stderr);
    let shared = Arc::new(Shared {
        state: ServeState::new(bundle),
        queue: Bounded::new(cfg.queue_depth),
        cfg,
        draining: AtomicBool::new(false),
        force_abort: AtomicBool::new(false),
        drained: AtomicU64::new(0),
        aborted: AtomicU64::new(0),
        open_conns: Arc::new(AtomicI64::new(0)),
        flight,
        access,
        online,
    });

    let workers = (0..shared.cfg.workers.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || worker_loop(&shared))
        })
        .collect();
    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || accept_loop(&shared, listener))
    };
    let reaper = {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || reaper_loop(&shared))
    };
    let reload = reload_source.map(|src| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || {
            reload_loop(
                &shared.state,
                &src,
                shared.cfg.reload_poll,
                &shared.draining,
            )
        })
    });
    let refit = shared.online.is_some().then(|| {
        let shared = Arc::clone(&shared);
        std::thread::spawn(move || refit_loop(&shared))
    });

    obs::trace::event("serve.start")
        .with("addr", addr.to_string())
        .with("workers", shared.cfg.workers as u64)
        .with("queue_depth", shared.cfg.queue_depth as u64);
    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        reload,
        reaper: Some(reaper),
        refit,
        workers,
    })
}

/// Open the feedback journal, restore the learner from its checkpoint plus
/// the journaled tail, and package the shared online state. Fails loudly
/// when the artifacts are not slot directories — without slots there is
/// nowhere for a refit to publish a generation.
fn open_online(
    ocfg: &OnlineConfig,
    bundle: &Arc<ServingBundle>,
    reload_source: Option<&ReloadSource>,
) -> Result<Arc<OnlineState>, MbError> {
    let src = reload_source.ok_or_else(|| {
        MbError::usage(
            "--feedback-journal requires slot-directory artifacts (--slot-dir) \
             so refits can publish new generations",
        )
    })?;
    if !src.model_path.is_dir() {
        return Err(MbError::usage(
            "--feedback-journal requires the model path to be a slot directory",
        ));
    }
    let stats_dir = src
        .stats_path
        .clone()
        .filter(|p| p.is_dir())
        .ok_or_else(|| {
            MbError::usage("--feedback-journal requires the stats path to be a slot directory")
        })?;

    let (journal, recovery) = Journal::open(&ocfg.journal_dir)
        .map_err(|e| MbError::invariant(format!("feedback journal open failed: {e}")))?;
    let mut learner = OnlineLearner::new(bundle.stats().clone(), bundle.model().spec);
    if let Some(state) = &recovery.state {
        learner
            .restore_state(state)
            .map_err(|e| MbError::invariant(format!("learner checkpoint restore failed: {e}")))?;
    }
    for batch in &recovery.batches {
        learner.absorb(batch);
    }
    let replayed = recovery.batches.len() as u64;
    if replayed > 0 || recovery.state.is_some() {
        obs::trace::event("online.journal_replayed")
            .with("replayed_batches", replayed)
            .with("total_batches", learner.batches_folded());
    }
    let batches = learner.batches_folded();
    let events = learner.events_folded();
    let position_classes = learner.posclass().num_classes() as u64;
    Ok(Arc::new(OnlineState {
        inner: Mutex::new(OnlineInner {
            journal,
            learner,
            pending: replayed,
        }),
        model_dir: src.model_path.clone(),
        stats_dir,
        refit_interval: ocfg.refit_interval,
        min_refit_batches: ocfg.min_refit_batches.max(1),
        origin_online: AtomicBool::new(false),
        refits: AtomicU64::new(0),
        batches: AtomicU64::new(batches),
        events: AtomicU64::new(events),
        position_classes: AtomicU64::new(position_classes),
        last_refit_generation: AtomicU64::new(0),
    }))
}

/// The background refitter: every `refit_interval`, snapshot the learner
/// (cheaply, under the ingest lock), retrain **off** the lock, publish the
/// new generation through the artifact slots the hot-reload poller
/// watches, then checkpoint the journal so replay stays bounded.
fn refit_loop(shared: &Shared) {
    let Some(online) = shared.online.as_ref() else {
        return;
    };
    let step = Duration::from_millis(20).min(online.refit_interval.max(Duration::from_millis(1)));
    loop {
        let mut slept = Duration::ZERO;
        while slept < online.refit_interval {
            if shared.draining.load(Ordering::Relaxed) {
                return;
            }
            std::thread::sleep(step);
            slept += step;
        }
        if shared.draining.load(Ordering::Relaxed) {
            return;
        }
        run_refit(online);
    }
}

/// One refit attempt; all failure paths leave the previous generation
/// serving untouched.
fn run_refit(online: &OnlineState) {
    let (learner, pending_at_snapshot) = {
        let inner = online.lock();
        if inner.pending < online.min_refit_batches {
            return;
        }
        (inner.learner.clone(), inner.pending)
    };
    let started = obs::now_if_enabled();
    let out = match learner.refit() {
        Ok(out) => out,
        Err(OnlineError::NoPairs) => {
            // Expected while the online corpus is still below the pair
            // filter's significance floor; try again next interval.
            obs::trace::event("online.refit_skipped").with("reason", "no_pairs");
            return;
        }
        Err(e) => {
            obs::counter!("microbrowse_refit_failures_total").inc();
            obs::trace::event("online.refit_failed").with("error", e.to_string());
            return;
        }
    };

    // Stats first, then model: the reload poller keys on the manifests, and
    // committing the folded stats before the model that was fit against
    // them means whichever poll observes the new model also sees its stats.
    let stats_slot = ArtifactSlot::new(&online.stats_dir, STATS_SLOT_NAME);
    if let Err(e) = stats_slot.commit(&stats_file::to_bytes(&out.stats)) {
        obs::counter!("microbrowse_refit_failures_total").inc();
        obs::trace::event("online.refit_failed").with("error", format!("stats commit: {e}"));
        return;
    }
    let model_slot = ArtifactSlot::new(&online.model_dir, MODEL_SLOT_NAME);
    let generation = match out.model.commit_to_slot(&model_slot) {
        Ok(g) => g,
        Err(e) => {
            obs::counter!("microbrowse_refit_failures_total").inc();
            obs::trace::event("online.refit_failed").with("error", format!("model commit: {e}"));
            return;
        }
    };
    let posclass_slot = ArtifactSlot::new(&online.model_dir, POSCLASS_SLOT_NAME);
    if let Err(e) = posclass_slot.commit(&out.posclass.to_bytes()) {
        // The scoring generation is already live; the position-class
        // artifact is advisory, so record the failure and keep going.
        obs::trace::event("online.posclass_commit_failed").with("error", e.to_string());
    }
    let _ = stats_slot.prune(4);
    let _ = model_slot.prune(4);
    let _ = posclass_slot.prune(4);

    {
        let mut inner = online.lock();
        let state = inner.learner.state_bytes();
        if let Err(e) = inner.journal.commit_checkpoint(&state) {
            // Replay will redo a little extra work after a restart, but
            // the published generation is unaffected.
            obs::trace::event("online.checkpoint_failed").with("error", e.to_string());
        }
        inner.pending = inner.pending.saturating_sub(pending_at_snapshot);
        online.position_classes.store(
            inner.learner.posclass().num_classes() as u64,
            Ordering::Relaxed,
        );
    }
    online.origin_online.store(true, Ordering::Relaxed);
    online.refits.fetch_add(1, Ordering::Relaxed);
    online
        .last_refit_generation
        .store(generation, Ordering::Relaxed);
    obs::counter!("microbrowse_refit_total").inc();
    obs::histogram!("microbrowse_refit_duration_us").observe_since(started);
    obs::trace::event("online.refit_published")
        .with("generation", generation)
        .with("pairs", out.pairs as u64)
        .with("batches", learner.batches_folded());
}

/// Slot name for the per-query-class position model the refitter publishes
/// next to the model artifact.
pub const POSCLASS_SLOT_NAME: &str = "posclass.mbo";

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Completed hot reloads so far.
    pub fn reloads(&self) -> u64 {
        self.shared.state.reloads()
    }

    /// Whether the currently served bundle is degraded (term-only).
    pub fn degraded(&self) -> bool {
        self.shared.state.current().fidelity().is_degraded()
    }

    /// Flight-recorder introspection for benches and tests:
    /// `(ring writes, retained traces, retained-buffer evictions)`.
    pub fn flight_stats(&self) -> (u64, usize, u64) {
        (
            self.shared.flight.ring_writes(),
            self.shared.flight.retained_len(),
            self.shared.flight.evicted(),
        )
    }

    /// Graceful shutdown: stop accepting, serve what is queued, give
    /// in-flight sessions until the drain deadline, then force-abort the
    /// rest. Returns the drained/aborted accounting.
    pub fn shutdown(mut self) -> DrainReport {
        let started = Instant::now();
        self.shared.draining.store(true, Ordering::SeqCst);
        // Unblock the accept loop: it re-checks the flag per connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.shared.queue.close();
        if let Some(h) = self.reload.take() {
            let _ = h.join();
        }
        if let Some(h) = self.reaper.take() {
            let _ = h.join();
        }
        if let Some(h) = self.refit.take() {
            let _ = h.join();
        }

        let deadline = started + self.shared.cfg.drain_deadline;
        for h in &self.workers {
            while !h.is_finished() && Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(5));
            }
            if !h.is_finished() {
                self.shared.force_abort.store(true, Ordering::SeqCst);
                break;
            }
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Connections accepted but never served count as aborted.
        let unserved = self.shared.queue.drain().len() as u64;
        self.shared.aborted.fetch_add(unserved, Ordering::Relaxed);

        let report = DrainReport {
            drained: self.shared.drained.load(Ordering::Relaxed),
            aborted: self.shared.aborted.load(Ordering::Relaxed),
        };
        obs::trace::event("serve.shutdown")
            .with("drained", report.drained)
            .with("aborted", report.aborted)
            .with("elapsed_ms", started.elapsed().as_millis() as u64);
        report
    }
}

fn accept_loop(shared: &Shared, listener: TcpListener) {
    for conn in listener.incoming() {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        obs::counter!("microbrowse_http_connections_total").inc();
        let _ = stream.set_nodelay(true);
        // A socket whose timeouts cannot be configured must not be served:
        // without them every read/write on it is unbounded IO. Refuse it
        // loudly instead of proceeding.
        if stream
            .set_read_timeout(Some(shared.cfg.read_timeout))
            .and_then(|()| stream.set_write_timeout(Some(shared.cfg.write_timeout)))
            .is_err()
        {
            obs::counter!("microbrowse_http_sock_cfg_failed_total").inc();
            obs::trace::event("serve.sock_cfg_failed");
            drop(stream);
            continue;
        }
        if shared.cfg.max_conns > 0
            && shared.open_conns.load(Ordering::SeqCst) >= shared.cfg.max_conns as i64
        {
            obs::counter!("microbrowse_http_conn_limit_rejected_total").inc();
            reject_busy(shared, stream, "connection limit reached");
            continue;
        }
        let entry = QueuedConn {
            stream,
            accepted: Instant::now(),
            _permit: ConnPermit::acquire(&shared.open_conns),
        };
        match shared.queue.try_push(entry) {
            Ok(depth) => {
                obs::gauge!("microbrowse_http_queue_depth").set(depth as i64);
            }
            Err(PushError::Full(entry)) => reject_busy(shared, entry.stream, "queue full"),
            Err(PushError::Closed(_)) => return,
        }
    }
}

/// `Retry-After` seconds derived from live queue depth: assume each worker
/// clears ~10 queued connections a second (scoring itself is sub-ms; the
/// bound is slow clients), so the hinted wait tracks how far back in line a
/// retry would land. Clamped to `[1, 30]`.
fn retry_after_secs(depth: usize, workers: usize) -> u32 {
    let per_sec = workers.max(1) * 10;
    (depth.div_ceil(per_sec)).clamp(1, 30) as u32
}

/// The backpressure answer: an immediate `503` with the `overloaded`
/// envelope code and a depth-derived `Retry-After`, written from the accept
/// thread so a saturated worker pool cannot delay it.
fn reject_busy(shared: &Shared, stream: TcpStream, why: &str) {
    obs::counter!("microbrowse_http_rejected_total").inc();
    let trace = obs::trace::new_trace_id();
    let _ctx = TraceContext::for_trace(trace).enter();
    obs::trace::event("serve.rejected").with("why", why);
    let secs = retry_after_secs(shared.queue.len(), shared.cfg.workers);
    let body = ErrorEnvelope::with_code(format!("server busy, {why}"), CODE_OVERLOADED).to_json();
    let write_started = Instant::now();
    let _ = Response::json(503, body)
        .retry_after(secs)
        .closing()
        .with_header("X-Mb-Trace-Id", format_trace_id(trace))
        .write_to(&mut &stream);
    record_shed(shared, trace, 0, write_started.elapsed().as_micros() as u64);
}

/// Shed one stale queued connection: its client has been waiting longer
/// than the queue timeout, so the connection is answered `503 overloaded`
/// and closed rather than served long after the caller gave up.
fn shed_stale(shared: &Shared, entry: QueuedConn) {
    obs::counter!("microbrowse_http_reaped_total").inc();
    let trace = obs::trace::new_trace_id();
    let _ctx = TraceContext::for_trace(trace).enter();
    let queue_us = entry.accepted.elapsed().as_micros() as u64;
    obs::trace::event("serve.reaped").with("queued_ms", queue_us / 1000);
    let secs = retry_after_secs(shared.queue.len(), shared.cfg.workers);
    let body = ErrorEnvelope::with_code("server busy, queued too long", CODE_OVERLOADED).to_json();
    let write_started = Instant::now();
    let _ = Response::json(503, body)
        .retry_after(secs)
        .closing()
        .with_header("X-Mb-Trace-Id", format_trace_id(trace))
        .write_to(&mut &entry.stream);
    record_shed(
        shared,
        trace,
        queue_us,
        write_started.elapsed().as_micros() as u64,
    );
}

/// Make a shed retrievable after the fact: the generated trace id (echoed
/// to the client in `X-Mb-Trace-Id`) lands in both the access log and the
/// flight recorder's retained buffer, so every 503 written from the accept
/// thread or the reaper can be looked up via `GET /debug/trace`. The shed
/// never parsed a request, hence the `"-"` method/path placeholders.
fn record_shed(shared: &Shared, trace: u128, queue_us: u64, write_us: u64) {
    shared.access.push(AccessRecord {
        method: "-".to_owned(),
        path: "-".to_owned(),
        status: 503,
        trace,
        queue_us,
        parse_us: 0,
        score_us: 0,
        write_us,
    });
    shared.flight.promote_direct(
        trace,
        TraceSummary {
            reason: PromoteReason::Shed,
            status: 503,
            endpoint: "-".to_owned(),
            total_us: queue_us.saturating_add(write_us),
            queue_us,
            parse_us: 0,
            score_us: 0,
            write_us,
        },
        Vec::new(),
    );
}

/// The idle/stale-connection reaper: periodically pops connections that
/// have sat in the queue beyond [`ServerConfig::queue_timeout`] and sheds
/// them. Workers also check at dequeue; the reaper covers the case where
/// every worker is pinned by a slow session and nothing is dequeuing at
/// all — queue slots reopen instead of filling with dead connections.
fn reaper_loop(shared: &Shared) {
    while !shared.draining.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(50));
        while let Some(entry) = shared
            .queue
            .pop_front_if(|c| c.accepted.elapsed() > shared.cfg.queue_timeout)
        {
            shed_stale(shared, entry);
        }
        obs::gauge!("microbrowse_http_queue_depth").set(shared.queue.len() as i64);
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        match shared.queue.pop_timeout(Duration::from_millis(50)) {
            Popped::Item(entry) => {
                obs::gauge!("microbrowse_http_queue_depth").set(shared.queue.len() as i64);
                // Dequeue-time staleness check (the reaper's fast path):
                // don't start a session nobody is waiting on. Draining
                // sessions are served — drain means "finish the queue".
                if !shared.draining.load(Ordering::SeqCst)
                    && entry.accepted.elapsed() > shared.cfg.queue_timeout
                {
                    shed_stale(shared, entry);
                    continue;
                }
                serve_connection(shared, entry);
            }
            Popped::TimedOut => {
                if shared.force_abort.load(Ordering::Relaxed) {
                    return;
                }
            }
            Popped::Closed => return,
        }
    }
}

/// Serve one connection's whole keep-alive session. The outer loop pins a
/// bundle + scorer for the current reload epoch; the inner loop serves
/// requests until close, error, or epoch change.
///
/// When a request turns out to be `POST /v1/score` and more complete
/// score requests are already pipelined in the read buffer, the worker
/// coalesces up to [`ServerConfig::max_batch`] of them into one
/// [`Scorer::score_batch`] pass (see [`serve_score_group`]) and writes the
/// responses back in arrival order — identical bytes, amortized engine
/// work.
fn serve_connection(shared: &Shared, conn: QueuedConn) {
    let stream = &conn.stream;
    let dequeued = Instant::now();
    let mut reader = RequestReader::new(stream, shared.cfg.limits.clone());
    let mut first_request = true;
    'epoch: loop {
        let epoch = shared.state.epoch();
        let bundle = shared.state.current();
        let scorer = bundle.scorer();
        let mut scratch = scorer.scratch();
        let degraded = bundle.fidelity().is_degraded();
        loop {
            if shared.force_abort.load(Ordering::Relaxed) {
                shared.aborted.fetch_add(1, Ordering::Relaxed);
                return;
            }
            if shared.state.epoch() != epoch {
                continue 'epoch;
            }
            let draining = shared.draining.load(Ordering::SeqCst);
            match reader.next_request() {
                Ok(Some(req)) => {
                    let parsed_at = Instant::now();
                    // Stage accounting: queue wait is accept → worker
                    // dequeue and exists only for the first request of a
                    // session; parse is the request's own first byte →
                    // parsed (keep-alive idle time is excluded because the
                    // reader anchors at the first byte).
                    let queue_us = if first_request {
                        dequeued
                            .saturating_duration_since(conn.accepted)
                            .as_micros() as u64
                    } else {
                        0
                    };
                    let parse_us = reader.last_request_started().map_or(0, |s| {
                        parsed_at.saturating_duration_since(s).as_micros() as u64
                    });
                    // Deadline check before any scoring work. The budget is
                    // anchored at connection accept for the first request —
                    // time spent waiting in the accept queue counts against
                    // it, which is exactly what makes shed-at-dequeue work —
                    // and at the request's own first byte afterwards.
                    let anchor = if first_request {
                        conn.accepted
                    } else {
                        reader.last_request_started().unwrap_or_else(Instant::now)
                    };
                    // Adopt the caller's trace context (or mint a fresh id)
                    // before any span or event for this request fires, so
                    // the whole handling — deadline shed included — shares
                    // one trace id.
                    let ctx = wire_context(&req);
                    let _ctx_guard = ctx.enter();
                    if first_request {
                        obs::trace::event("serve.dequeued")
                            .with("queue_us", queue_us)
                            .with("parse_us", parse_us);
                    }
                    first_request = false;
                    let scoring = req.method == "POST" && req.path().starts_with("/v1/");
                    match Deadline::from_request(&req, anchor, shared.cfg.request_deadline) {
                        Err(e) => {
                            obs::counter!("microbrowse_http_bad_requests_total").inc();
                            let mut resp = Response::json(
                                400,
                                ErrorEnvelope::with_code(e, CODE_BAD_DEADLINE).to_json(),
                            );
                            resp.close = draining || !req.keep_alive;
                            let stages = Stages {
                                queue_us,
                                parse_us,
                                score_us: 0,
                            };
                            let wrote = finish_response(
                                shared, stream, &req, ctx, stages, degraded, &mut resp,
                            );
                            if resp.close || !wrote {
                                return;
                            }
                            continue;
                        }
                        // Shed expired scoring work instead of doing it: the
                        // caller already gave up on this answer. Reads
                        // (healthz, metrics) are served regardless — they are
                        // cheap and operators poll them under overload.
                        Ok(Some(deadline)) if scoring && deadline.expired() => {
                            obs::counter!("microbrowse_http_deadline_exceeded_total").inc();
                            obs::counter!("microbrowse_http_responses_5xx_total").inc();
                            obs::trace::event("serve.deadline_exceeded")
                                .with("overdue_ms", deadline.overdue().as_millis() as u64);
                            let mut resp = Response::json(
                                504,
                                ErrorEnvelope::with_code(
                                    "deadline expired in queue",
                                    CODE_DEADLINE_EXCEEDED,
                                )
                                .to_json(),
                            );
                            resp.close = draining || !req.keep_alive;
                            let stages = Stages {
                                queue_us,
                                parse_us,
                                score_us: 0,
                            };
                            let wrote = finish_response(
                                shared, stream, &req, ctx, stages, degraded, &mut resp,
                            );
                            if draining {
                                shared.aborted.fetch_add(1, Ordering::Relaxed);
                            }
                            if resp.close || !wrote {
                                return;
                            }
                            continue;
                        }
                        Ok(_) => {}
                    }
                    let mut group = vec![req];
                    // Requests carrying their own deadline are excluded from
                    // coalescing so each one's budget is judged individually.
                    let coalescable = |r: &HttpRequest| {
                        r.method == "POST"
                            && r.path() == "/v1/score"
                            && r.keep_alive
                            && r.header(DEADLINE_HEADER).is_none()
                    };
                    if !draining && coalescable(&group[0]) {
                        while group.len() < shared.cfg.max_batch {
                            match reader.next_buffered_if(coalescable) {
                                Some(r) => group.push(r),
                                None => break,
                            }
                        }
                    }
                    let score_started = Instant::now();
                    let responses = if group.len() == 1 {
                        vec![route(&group[0], &scorer, &mut scratch, &bundle, shared)]
                    } else {
                        serve_score_group(&group, &scorer, &mut scratch, bundle.model_generation())
                    };
                    // A coalesced group is one engine pass: the score stage
                    // is shared, and the queue/parse stages belong to the
                    // group head (followers were parsed out of its buffer).
                    let score_us = score_started.elapsed().as_micros() as u64;
                    for (i, (req, mut resp)) in group.iter().zip(responses).enumerate() {
                        if draining || !req.keep_alive {
                            resp.close = true;
                        }
                        let rctx = if i == 0 { ctx } else { wire_context(req) };
                        let _follower_guard = (i > 0).then(|| rctx.enter());
                        let stages = Stages {
                            queue_us: if i == 0 { queue_us } else { 0 },
                            parse_us: if i == 0 { parse_us } else { 0 },
                            score_us,
                        };
                        let wrote =
                            finish_response(shared, stream, req, rctx, stages, degraded, &mut resp);
                        if draining {
                            if wrote {
                                shared.drained.fetch_add(1, Ordering::Relaxed);
                            } else {
                                shared.aborted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        if resp.close || !wrote {
                            return;
                        }
                    }
                }
                Ok(None) => return, // clean close between requests
                Err(e) => {
                    // The request never parsed, so there is no caller trace
                    // id to adopt — mint one so the error response, the
                    // access log, and the flight recorder still join up.
                    let trace = obs::trace::new_trace_id();
                    let _ctx_guard = TraceContext::for_trace(trace).enter();
                    if matches!(e, HttpError::SlowRequest) {
                        obs::counter!("microbrowse_http_slow_requests_total").inc();
                        obs::trace::event("serve.slow_request");
                    } else if e.status().is_some() {
                        obs::counter!("microbrowse_http_bad_requests_total").inc();
                        obs::trace::event("serve.bad_request").with("error", e.to_string());
                    }
                    if let Some(resp) = error_response(&e) {
                        let status = resp.status;
                        let parse_us = reader
                            .last_request_started()
                            .map_or(0, |s| s.elapsed().as_micros() as u64);
                        let _ = resp
                            .with_header("X-Mb-Trace-Id", format_trace_id(trace))
                            .write_to(&mut &*stream);
                        shared.access.push(AccessRecord {
                            method: "-".to_owned(),
                            path: "-".to_owned(),
                            status,
                            trace,
                            queue_us: 0,
                            parse_us,
                            score_us: 0,
                            write_us: 0,
                        });
                        shared.flight.promote(
                            trace,
                            TraceSummary {
                                reason: PromoteReason::Error,
                                status,
                                endpoint: "-".to_owned(),
                                total_us: parse_us,
                                queue_us: 0,
                                parse_us,
                                score_us: 0,
                                write_us: 0,
                            },
                        );
                    }
                    // An idle keep-alive connection timing out during the
                    // drain is a clean close, not an aborted request.
                    let idle = matches!(e, crate::http::HttpError::Timeout { mid_request: false });
                    if draining && !idle {
                        shared.aborted.fetch_add(1, Ordering::Relaxed);
                    }
                    return;
                }
            }
        }
    }
}

/// Per-stage latency accounting for one request, microseconds. The write
/// stage is measured inside [`finish_response`]; these three are the
/// pre-write stages that can be reported in `X-Mb-Server-Timing`.
#[derive(Clone, Copy, Default)]
struct Stages {
    queue_us: u64,
    parse_us: u64,
    score_us: u64,
}

/// Reconstruct a request's trace context from its wire headers, minting a
/// fresh trace id when the caller did not send one (every response carries
/// `X-Mb-Trace-Id` either way, so the caller can always join its outcome to
/// `/debug/trace`).
fn wire_context(req: &HttpRequest) -> TraceContext {
    let trace = req
        .header(TRACE_ID_HEADER)
        .and_then(obs::trace::parse_trace_id)
        .unwrap_or_else(obs::trace::new_trace_id);
    let parent = req
        .header(PARENT_SPAN_HEADER)
        .and_then(|v| v.trim().parse::<u64>().ok())
        .unwrap_or(0);
    let sampled = matches!(
        req.header(SAMPLED_HEADER).map(str::trim),
        Some("1" | "true")
    );
    TraceContext::from_wire(trace, parent, sampled)
}

/// Write one response with its trace id echoed in `X-Mb-Trace-Id` (and the
/// stage breakdown in `X-Mb-Server-Timing` when the caller opted in by
/// sending that header), push the access-log record, and hand the trace to
/// the flight recorder when the tail sampler deems it anomalous: shed
/// (503/504), errored (other 4xx/5xx), slower than the configured
/// threshold, served degraded, or force-sampled by the caller. Returns
/// whether the write succeeded.
fn finish_response(
    shared: &Shared,
    stream: &TcpStream,
    req: &HttpRequest,
    ctx: TraceContext,
    stages: Stages,
    degraded: bool,
    resp: &mut Response,
) -> bool {
    resp.extra_headers
        .push(("X-Mb-Trace-Id", format_trace_id(ctx.trace_id())));
    if req.header(SERVER_TIMING_HEADER).is_some() {
        resp.extra_headers.push((
            "X-Mb-Server-Timing",
            format!(
                "queue={};parse={};score={}",
                stages.queue_us, stages.parse_us, stages.score_us
            ),
        ));
    }
    let write_started = Instant::now();
    let wrote = resp.write_to(&mut &*stream).is_ok();
    let write_us = write_started.elapsed().as_micros() as u64;
    let record = AccessRecord {
        method: req.method.clone(),
        path: req.path().to_owned(),
        status: resp.status,
        trace: ctx.trace_id(),
        queue_us: stages.queue_us,
        parse_us: stages.parse_us,
        score_us: stages.score_us,
        write_us,
    };
    let total_us = record.total_us();
    let endpoint = format!("{} {}", record.method, record.path);
    shared.access.push(record);
    let reason = if matches!(resp.status, 503 | 504) {
        Some(PromoteReason::Shed)
    } else if resp.status >= 400 {
        Some(PromoteReason::Error)
    } else if total_us > shared.cfg.flight_slow.as_micros() as u64 {
        Some(PromoteReason::Slow)
    } else if degraded {
        Some(PromoteReason::Degraded)
    } else if ctx.sampled() {
        Some(PromoteReason::Sampled)
    } else {
        None
    };
    if let Some(reason) = reason {
        shared.flight.promote(
            ctx.trace_id(),
            TraceSummary {
                reason,
                status: resp.status,
                endpoint,
                total_us,
                queue_us: stages.queue_us,
                parse_us: stages.parse_us,
                score_us: stages.score_us,
                write_us,
            },
        );
    }
    wrote
}

/// Dispatch one request, with per-endpoint metrics and a request span.
fn route<'a>(
    req: &HttpRequest,
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    bundle: &ServingBundle,
    shared: &Shared,
) -> Response {
    let started = obs::now_if_enabled();
    let endpoint = match (req.method.as_str(), req.path()) {
        ("POST", "/v1/score") => "score",
        ("POST", "/v1/rank") => "rank",
        ("POST", "/v1/batch") => "batch",
        ("POST", "/v1/suggest") => "suggest",
        ("POST", "/v1/explain") => "explain",
        ("POST", "/v1/feedback") => "feedback",
        ("GET", "/healthz") => "healthz",
        ("GET", "/metrics") => "metrics",
        ("GET", "/version") => "version",
        ("GET", "/debug/trace") => "debug_trace",
        ("GET", "/debug/requests") => "debug_requests",
        (
            _,
            "/v1/score" | "/v1/rank" | "/v1/batch" | "/v1/suggest" | "/v1/explain" | "/v1/feedback"
            | "/healthz" | "/metrics" | "/version" | "/debug/trace" | "/debug/requests",
        ) => "bad_method",
        _ => "unknown",
    };
    let mut span = obs::trace::span("serve.request").with("endpoint", endpoint);
    let generation = bundle.model_generation();
    let resp = match endpoint {
        "score" => handle_score(req, scorer, scratch, generation),
        "rank" => handle_rank(req, scorer, scratch, generation),
        "batch" => handle_batch(req, scorer, scratch, shared, generation),
        "suggest" => handle_suggest(req, scorer, scratch, shared, generation),
        "explain" => handle_explain(req, scorer, scratch, generation),
        "feedback" => handle_feedback(req, shared),
        "healthz" => handle_healthz(bundle, shared),
        "metrics" => handle_metrics(),
        "version" => handle_version(shared),
        "debug_trace" => handle_debug_trace(req, shared),
        "debug_requests" => handle_debug_requests(req, shared),
        "bad_method" => Response::json(
            405,
            ErrorEnvelope::with_code("method not allowed", CODE_METHOD_NOT_ALLOWED).to_json(),
        ),
        _ => Response::json(
            404,
            ErrorEnvelope::with_code(format!("no such endpoint: {}", req.path()), CODE_NOT_FOUND)
                .to_json(),
        ),
    };
    span.add("status", resp.status as u64);

    obs::counter!("microbrowse_http_requests_total").inc();
    match endpoint {
        "score" => obs::histogram!("microbrowse_http_score_latency_us").observe_since(started),
        "rank" => obs::histogram!("microbrowse_http_rank_latency_us").observe_since(started),
        "batch" => obs::histogram!("microbrowse_http_batch_latency_us").observe_since(started),
        "suggest" => obs::histogram!("microbrowse_http_suggest_latency_us").observe_since(started),
        "explain" => obs::histogram!("microbrowse_http_explain_latency_us").observe_since(started),
        "feedback" => {
            obs::histogram!("microbrowse_http_feedback_latency_us").observe_since(started)
        }
        _ => obs::histogram!("microbrowse_http_other_latency_us").observe_since(started),
    }
    match resp.status {
        400..=499 => obs::counter!("microbrowse_http_responses_4xx_total").inc(),
        500..=599 => obs::counter!("microbrowse_http_responses_5xx_total").inc(),
        _ => {}
    }
    resp
}

/// 400 with the coded v1 error envelope.
fn bad_request(e: impl std::fmt::Display) -> Response {
    Response::json(
        400,
        ErrorEnvelope::with_code(e.to_string(), CODE_BAD_REQUEST).to_json(),
    )
}

/// 413 with the coded v1 error envelope.
fn too_large(msg: String) -> Response {
    Response::json(413, ErrorEnvelope::with_code(msg, CODE_TOO_LARGE).to_json())
}

/// The request body as UTF-8, or the 400 that says it is not.
fn body_str(req: &HttpRequest) -> Result<&str, Response> {
    std::str::from_utf8(&req.body).map_err(|_| bad_request("body is not valid UTF-8"))
}

/// A creative from its `|`-separated line form (same syntax as the CLI).
fn parse_snippet(text: &str) -> Snippet {
    Snippet::from_lines(text.split('|').map(str::trim))
}

/// `POST /v1/score` — body `{"r": "l1|l2|l3", "s": "l1|l2|l3"}`.
fn handle_score<'a>(
    req: &HttpRequest,
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    generation: Option<u64>,
) -> Response {
    let sreq = match body_str(req).and_then(|t| ScoreRequest::from_json(t).map_err(bad_request)) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let started = Instant::now();
    let outcome =
        scorer.score_pair_outcome(&parse_snippet(&sreq.r), &parse_snippet(&sreq.s), scratch);
    let resp = ScoreResponse::from_outcome(&outcome, started.elapsed().as_micros() as u64)
        .with_generation(generation);
    Response::json(200, resp.to_json())
}

/// Render a snippet back to the `|`-separated line form of the wire.
fn render_snippet(s: &Snippet) -> String {
    let lines: Vec<&str> = s.lines().iter().map(|l| l.text.as_str()).collect();
    lines.join("|")
}

/// A beam-searched [`Suggestion`] in its `/v1/suggest` wire form.
fn suggestion_to_wire(s: &Suggestion) -> SuggestedVariant {
    SuggestedVariant {
        creative: render_snippet(&s.creative),
        score: s.score,
        rewrites: s.steps.iter().map(SuggestedRewrite::from).collect(),
    }
}

/// `POST /v1/suggest` — body `{"creative":"l1|l2","beam_width":…,
/// "max_depth":…,"top_k":…}` (knobs optional). Enumerates corpus-observed
/// phrase substitutions, beam-searches the top-k rewritten variants, and
/// reports each with its score margin over the input and its substitution
/// chain. Knobs over `--max-beam` / `--max-suggestions` answer `413`.
fn handle_suggest<'a>(
    req: &HttpRequest,
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    shared: &Shared,
    generation: Option<u64>,
) -> Response {
    let sreq = match body_str(req).and_then(|t| SuggestRequest::from_json(t).map_err(bad_request)) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let mut cfg = SuggestConfig::default();
    let beam_cap = shared.cfg.max_beam;
    if let Some(b) = sreq.beam_width {
        if b == 0 || b as usize > beam_cap {
            return too_large(format!("beam_width {b} outside [1, {beam_cap}]"));
        }
        cfg.beam_width = b as usize;
    }
    if let Some(d) = sreq.max_depth {
        if d == 0 || d as usize > beam_cap {
            return too_large(format!("max_depth {d} outside [1, {beam_cap}]"));
        }
        cfg.max_depth = d as usize;
    }
    let k_cap = shared.cfg.max_suggestions;
    if let Some(k) = sreq.top_k {
        if k == 0 || k as usize > k_cap {
            return too_large(format!("top_k {k} outside [1, {k_cap}]"));
        }
        cfg.top_k = k as usize;
    }
    let started = Instant::now();
    let suggestions = beam_suggest(scorer, &parse_snippet(&sreq.creative), &cfg, scratch);
    let resp = SuggestResponse {
        suggestions: suggestions.iter().map(suggestion_to_wire).collect(),
        fidelity: scorer.fidelity().into(),
        generation,
        latency_us: started.elapsed().as_micros() as u64,
    };
    Response::json(200, resp.to_json())
}

/// `POST /v1/explain` — body `{"r":"l1|l2","s":"l1|l2"}`. Scores the pair
/// through the normal path, then decomposes the served margin into per-span
/// log-odds contributions (`bias + Σ contribution ≈ score`).
fn handle_explain<'a>(
    req: &HttpRequest,
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    generation: Option<u64>,
) -> Response {
    let ereq = match body_str(req).and_then(|t| ExplainRequest::from_json(t).map_err(bad_request)) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    let started = Instant::now();
    let exp = explain_pair(
        scorer,
        &parse_snippet(&ereq.r),
        &parse_snippet(&ereq.s),
        scratch,
    );
    let resp = ExplainResponse {
        score: exp.score,
        bias: exp.bias,
        spans: exp.spans.iter().map(SpanAttribution::from).collect(),
        fidelity: (&exp.fidelity).into(),
        generation,
        latency_us: started.elapsed().as_micros() as u64,
    };
    Response::json(200, resp.to_json())
}

/// `POST /v1/rank` — body `{"creatives": ["l1|l2|l3", ...]}` (≥ 2).
fn handle_rank<'a>(
    req: &HttpRequest,
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    generation: Option<u64>,
) -> Response {
    let rreq = match body_str(req).and_then(|t| RankRequest::from_json(t).map_err(bad_request)) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(e) = rreq.validate() {
        return bad_request(e);
    }
    let creatives: Vec<Snippet> = rreq.creatives.iter().map(|c| parse_snippet(c)).collect();
    let started = Instant::now();
    let order = scorer.rank(&creatives, scratch);
    let resp = RankResponse::from_zero_based(
        &order,
        scorer.fidelity().into(),
        started.elapsed().as_micros() as u64,
    )
    .with_generation(generation);
    Response::json(200, resp.to_json())
}

/// `POST /v1/batch` — body `[{"r": …, "s": …}, …]`, at most
/// [`ServerConfig::max_batch`] items. The whole array goes through one
/// [`Scorer::score_batch`] pass; the response carries a per-item
/// [`ScoreResponse`] (own latency each) plus the aggregate wall time.
fn handle_batch<'a>(
    req: &HttpRequest,
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    shared: &Shared,
    generation: Option<u64>,
) -> Response {
    let breq = match body_str(req).and_then(|t| BatchRequest::from_json(t).map_err(bad_request)) {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if breq.items.len() > shared.cfg.max_batch {
        return too_large(format!(
            "batch of {} items over the limit of {}",
            breq.items.len(),
            shared.cfg.max_batch
        ));
    }
    obs::counter!("microbrowse_batch_requests_total").inc();
    obs::counter!("microbrowse_batch_items_total").add(breq.items.len() as u64);
    obs::histogram!("microbrowse_batch_size").observe_us(breq.items.len() as u64);

    let pairs: Vec<(Snippet, Snippet)> = breq
        .items
        .iter()
        .map(|item| (parse_snippet(&item.r), parse_snippet(&item.s)))
        .collect();
    let started = Instant::now();
    let (scores, latencies) = scorer.score_batch_timed(&pairs, scratch);
    let fidelity: Fidelity = scorer.fidelity().into();
    let results: Vec<ScoreResponse> = scores
        .iter()
        .zip(&latencies)
        .map(|(&score, &lat)| {
            ScoreResponse::new(score, fidelity.clone(), lat).with_generation(generation)
        })
        .collect();
    let resp = BatchResponse {
        results,
        fidelity,
        generation,
        latency_us: started.elapsed().as_micros() as u64,
    };
    Response::json(200, resp.to_json())
}

/// `POST /v1/feedback` — body `{"key":"…","events":[…]}`. Journals the
/// batch durably (segment + listing committed before the 200), folds it
/// into the learner, and dedupes by idempotency key: the
/// `X-Mb-Idempotency-Key` header overrides the body's `"key"`, and a
/// repeat of an already-journaled key answers `deduped:true` without
/// double-counting, which is what makes ambiguous client retries safe.
fn handle_feedback(req: &HttpRequest, shared: &Shared) -> Response {
    let Some(online) = shared.online.as_ref() else {
        return Response::json(
            503,
            ErrorEnvelope::with_code(
                "feedback ingestion disabled (start with --feedback-journal)",
                CODE_UNAVAILABLE,
            )
            .to_json(),
        );
    };
    let freq = match body_str(req).and_then(|t| FeedbackRequest::from_json(t).map_err(bad_request))
    {
        Ok(v) => v,
        Err(resp) => return resp,
    };
    if let Err(e) = freq.validate() {
        return bad_request(e);
    }
    let header_key = req
        .header(IDEMPOTENCY_HEADER)
        .map(str::trim)
        .filter(|k| !k.is_empty());
    let key = match header_key {
        Some(k) => k.to_string(),
        None if !freq.key.is_empty() => freq.key.clone(),
        None => {
            return bad_request(
                "feedback needs an idempotency key \
                 (X-Mb-Idempotency-Key header or \"key\" field)",
            )
        }
    };
    obs::counter!("microbrowse_feedback_requests_total").inc();
    let started = Instant::now();
    let batch = FeedbackRequest {
        key,
        events: freq.events,
    };
    let mut inner = online.lock();
    match inner.journal.append(&batch) {
        Ok(Append::Duplicate { seq }) => {
            drop(inner);
            obs::counter!("microbrowse_feedback_deduped_total").inc();
            let resp = FeedbackResponse {
                accepted: 0,
                deduped: true,
                seq,
                latency_us: started.elapsed().as_micros() as u64,
            };
            Response::json(200, resp.to_json())
        }
        Ok(Append::Appended { seq }) => {
            inner.learner.absorb(&batch);
            inner.pending += 1;
            drop(inner);
            online.batches.fetch_add(1, Ordering::Relaxed);
            online
                .events
                .fetch_add(batch.events.len() as u64, Ordering::Relaxed);
            obs::counter!("microbrowse_feedback_events_total").add(batch.events.len() as u64);
            let resp = FeedbackResponse {
                accepted: batch.events.len() as u64,
                deduped: false,
                seq,
                latency_us: started.elapsed().as_micros() as u64,
            };
            Response::json(200, resp.to_json())
        }
        Err(e) => {
            drop(inner);
            Response::json(
                500,
                ErrorEnvelope::with_code(
                    format!("feedback journal append failed: {e}"),
                    CODE_INTERNAL,
                )
                .to_json(),
            )
        }
    }
}

/// Serve a coalesced group of pipelined `/v1/score` requests through one
/// [`Scorer::score_batch`] pass. Each request still gets its own response
/// with exactly the bytes the single-request path would have produced —
/// malformed bodies answer their own 400 without sinking the rest of the
/// group.
fn serve_score_group<'a>(
    group: &[HttpRequest],
    scorer: &Scorer<'a>,
    scratch: &mut Scratch<'a>,
    generation: Option<u64>,
) -> Vec<Response> {
    let mut span = obs::trace::span("serve.coalesced").with("size", group.len() as u64);
    obs::counter!("microbrowse_batch_coalesced_total").add(group.len() as u64);
    obs::histogram!("microbrowse_batch_size").observe_us(group.len() as u64);

    let parsed: Vec<Result<ScoreRequest, Response>> = group
        .iter()
        .map(|req| body_str(req).and_then(|t| ScoreRequest::from_json(t).map_err(bad_request)))
        .collect();
    let pairs: Vec<(Snippet, Snippet)> = parsed
        .iter()
        .filter_map(|p| p.as_ref().ok())
        .map(|sreq| (parse_snippet(&sreq.r), parse_snippet(&sreq.s)))
        .collect();
    let (scores, latencies) = scorer.score_batch_timed(&pairs, scratch);
    let fidelity: Fidelity = scorer.fidelity().into();

    let mut scored = scores.iter().zip(&latencies);
    let responses: Vec<Response> = parsed
        .into_iter()
        .map(|p| match p {
            Ok(_) => match scored.next() {
                Some((&score, &lat)) => {
                    obs::histogram!("microbrowse_http_score_latency_us").observe_us(lat);
                    Response::json(
                        200,
                        ScoreResponse::new(score, fidelity.clone(), lat)
                            .with_generation(generation)
                            .to_json(),
                    )
                }
                // Unreachable: score_batch returns one score per parsed pair.
                None => Response::json(
                    500,
                    ErrorEnvelope::with_code("batch scoring dropped a result", CODE_INTERNAL)
                        .to_json(),
                ),
            },
            Err(resp) => resp,
        })
        .collect();

    let mut ok = 0u64;
    for resp in &responses {
        obs::counter!("microbrowse_http_requests_total").inc();
        match resp.status {
            400..=499 => obs::counter!("microbrowse_http_responses_4xx_total").inc(),
            500..=599 => obs::counter!("microbrowse_http_responses_5xx_total").inc(),
            _ => ok += 1,
        }
    }
    span.add("scored", ok);
    responses
}

/// `GET /healthz` — `200` only when serving at full fidelity and not
/// draining; degraded bundles answer `503` with the reason, so load
/// balancers stop sending traffic that deserves full-fidelity scores.
fn handle_healthz(bundle: &ServingBundle, shared: &Shared) -> Response {
    let draining = shared.draining.load(Ordering::SeqCst);
    let degraded = bundle.fidelity().is_degraded();
    let status_text = if draining {
        "draining"
    } else if degraded {
        "degraded"
    } else {
        "ok"
    };
    let gen_json = |g: Option<u64>| g.map_or("null".to_string(), |g| g.to_string());
    let obj = JsonObject::new()
        .str("status", status_text)
        .raw("model_generation", &gen_json(bundle.model_generation()))
        .raw("stats_generation", &gen_json(bundle.stats_generation()))
        .u64("queue_depth", shared.queue.len() as u64)
        .u64(
            "queue_age_ms",
            shared
                .queue
                .peek_front_map(|c| c.accepted.elapsed().as_millis() as u64)
                .unwrap_or(0),
        )
        .u64(
            "open_conns",
            shared.open_conns.load(Ordering::SeqCst).max(0) as u64,
        )
        .u64("epoch", shared.state.epoch())
        .u64("reloads", shared.state.reloads())
        .u64("compiled_features", bundle.engine().table().len() as u64)
        .u64(
            "align_cache_entries",
            bundle.engine().align().entries() as u64,
        );
    // Provenance: whether the generation being served came from the batch
    // build or an online refit, and how much feedback has been folded.
    let obj = match shared.online.as_ref() {
        Some(online) => obj
            .str("provenance", online.origin())
            .u64("refits", online.refits.load(Ordering::Relaxed))
            .u64("feedback_batches", online.batches.load(Ordering::Relaxed))
            .u64("feedback_events", online.events.load(Ordering::Relaxed))
            .u64(
                "position_classes",
                online.position_classes.load(Ordering::Relaxed),
            ),
        None => obj.str("provenance", "batch-built"),
    };
    let obj = Fidelity::from(bundle.fidelity()).append_to(obj);
    let status = if draining || degraded { 503 } else { 200 };
    Response::json(status, obj.finish())
}

/// `GET /metrics` — the Prometheus dump, plus the conventional
/// `build_info` gauge (always 1; the interesting part is the version
/// label) that the registry's label-free model cannot express.
fn handle_metrics() -> Response {
    let mut text = obs::metrics::registry().render_prometheus();
    text.push_str("# TYPE microbrowse_build_info gauge\n");
    text.push_str(&format!(
        "microbrowse_build_info{{version=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION")
    ));
    Response::text(200, text)
}

/// `GET /version` — crate version plus the capabilities this server was
/// started with, so operators can tell from one probe what the instance
/// can do.
fn handle_version(shared: &Shared) -> Response {
    let mut features = vec![
        "flight-recorder".to_owned(),
        "suggest".to_owned(),
        "explain".to_owned(),
    ];
    if shared.cfg.access_log_stderr {
        features.push("access-log".to_owned());
    }
    if shared.cfg.request_deadline.is_some() {
        features.push("request-deadline".to_owned());
    }
    if shared.cfg.max_batch > 1 {
        features.push("coalescing".to_owned());
    }
    if let Some(online) = shared.online.as_ref() {
        features.push("online-feedback".to_owned());
        features.push(format!("model-origin:{}", online.origin()));
        let gen = online.last_refit_generation.load(Ordering::Relaxed);
        if gen > 0 {
            features.push(format!("refit-generation:{gen}"));
        }
    }
    let info = VersionInfo {
        name: "microbrowse-server".to_owned(),
        version: env!("CARGO_PKG_VERSION").to_owned(),
        features,
    };
    Response::json(200, info.to_json())
}

/// `GET /debug/trace?last=N` — the most recently retained anomalous
/// traces (default 16), newest first, as [`DebugTraceResponse`].
fn handle_debug_trace(req: &HttpRequest, shared: &Shared) -> Response {
    let last = req
        .query_param("last")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(16);
    let traces = shared
        .flight
        .retained(last)
        .iter()
        .map(retained_to_wire)
        .collect();
    Response::json(200, DebugTraceResponse { traces }.to_json())
}

/// `GET /debug/requests?last=N` — the recent access-log ring (default 64),
/// newest first, as [`DebugRequestsResponse`].
fn handle_debug_requests(req: &HttpRequest, shared: &Shared) -> Response {
    let last = req
        .query_param("last")
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(64);
    let requests = shared
        .access
        .recent(last)
        .iter()
        .map(|r| DebugRequestEntry {
            method: r.method.clone(),
            path: r.path.clone(),
            status: r.status,
            trace_id: format_trace_id(r.trace),
            total_us: r.total_us(),
            stages: DebugStages {
                queue_us: r.queue_us,
                parse_us: r.parse_us,
                score_us: r.score_us,
                write_us: r.write_us,
            },
        })
        .collect();
    Response::json(200, DebugRequestsResponse { requests }.to_json())
}

/// A retained flight-recorder trace in its `/debug/trace` wire form.
fn retained_to_wire(t: &RetainedTrace) -> DebugTraceEntry {
    DebugTraceEntry {
        trace_id: format_trace_id(t.trace),
        reason: t.summary.reason.as_str().to_owned(),
        status: t.summary.status,
        endpoint: t.summary.endpoint.clone(),
        total_us: t.summary.total_us,
        stages: DebugStages {
            queue_us: t.summary.queue_us,
            parse_us: t.summary.parse_us,
            score_us: t.summary.score_us,
            write_us: t.summary.write_us,
        },
        spans: t
            .spans
            .iter()
            .map(|s| DebugSpan {
                id: s.id,
                parent: s.parent,
                name: s.name.to_owned(),
                thread: s.thread,
                start_us: s.start_us,
                dur_us: s.dur_us,
            })
            .collect(),
        events: t
            .events
            .iter()
            .map(|e| DebugEvent {
                span: e.span,
                name: e.name.to_owned(),
                thread: e.thread,
                at_us: e.at_us,
            })
            .collect(),
    }
}
