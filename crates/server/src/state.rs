//! Shared serving state and the hot-reload poller.
//!
//! The request path holds an `Arc<ServingBundle>` behind an `RwLock`; the
//! reload thread polls the artifact-slot manifests and, when a new
//! generation lands, loads it **off the request path** and atomically
//! swaps the `Arc` in. Workers notice via a monotonically increasing
//! epoch and rebuild their per-connection [`Scorer`](microbrowse_core::serve::Scorer)
//! (and its [`Scratch`](microbrowse_core::serve::Scratch)) over the new
//! bundle between requests — zero downtime, zero dropped requests. A failed reload keeps the old bundle serving and is reported
//! through the `serve.reload_failed` event / failure counter.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Duration;

use microbrowse_core::serve::{
    LoadPolicy, ScorerBuilder, ServingBundle, MODEL_SLOT_NAME, STATS_SLOT_NAME,
};
use microbrowse_obs as obs;
use microbrowse_store::ArtifactSlot;

/// The atomically swappable serving bundle plus its epoch.
pub struct ServeState {
    bundle: RwLock<Arc<ServingBundle>>,
    epoch: AtomicU64,
    reloads: AtomicU64,
}

impl ServeState {
    /// Start serving `bundle` at epoch 0.
    pub fn new(bundle: Arc<ServingBundle>) -> Self {
        Self {
            bundle: RwLock::new(bundle),
            epoch: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
        }
    }

    /// The bundle currently serving (cheap: one `Arc` clone under a read
    /// lock).
    pub fn current(&self) -> Arc<ServingBundle> {
        Arc::clone(&self.bundle.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The current epoch; bumped by every [`Self::install`].
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Completed hot reloads since start.
    pub fn reloads(&self) -> u64 {
        self.reloads.load(Ordering::Relaxed)
    }

    /// Swap in a replacement bundle; returns the new epoch.
    pub fn install(&self, bundle: Arc<ServingBundle>) -> u64 {
        *self.bundle.write().unwrap_or_else(PoisonError::into_inner) = bundle;
        self.reloads.fetch_add(1, Ordering::Relaxed);
        self.epoch.fetch_add(1, Ordering::AcqRel) + 1
    }
}

/// Where reloadable artifacts live. Hot reload only applies to slot
/// directories — plain files have no generation numbering to poll.
#[derive(Debug, Clone)]
pub struct ReloadSource {
    /// Model path (file or slot directory).
    pub model_path: PathBuf,
    /// Stats path (file or slot directory).
    pub stats_path: Option<PathBuf>,
    /// Load policy for reloads (same as the initial load).
    pub policy: LoadPolicy,
}

impl ReloadSource {
    /// Whether any artifact can actually change generations.
    pub fn reloadable(&self) -> bool {
        self.model_path.is_dir() || self.stats_path.as_deref().is_some_and(|p| p.is_dir())
    }

    /// The builder that performs (re)loads from this source.
    pub fn builder(&self) -> ScorerBuilder {
        let mut b = ScorerBuilder::new(&self.model_path).policy(self.policy);
        if let Some(stats) = &self.stats_path {
            b = b.stats_path(stats);
        }
        b
    }

    /// Newest committed generations per the slot manifests, `(model,
    /// stats)`. `None` for plain files or not-yet-committed slots.
    fn manifest_generations(&self) -> (Option<u64>, Option<u64>) {
        let model = self
            .model_path
            .is_dir()
            .then(|| ArtifactSlot::new(&self.model_path, MODEL_SLOT_NAME).manifest_generation())
            .flatten();
        let stats = self
            .stats_path
            .as_deref()
            .filter(|p| p.is_dir())
            .and_then(|p| ArtifactSlot::new(p, STATS_SLOT_NAME).manifest_generation());
        (model, stats)
    }
}

/// Poll `source` every `interval` until `stop` is set, hot-swapping
/// `state` whenever a newer generation is committed. Runs on a dedicated
/// thread; sleeps in small steps so shutdown is prompt.
pub fn reload_loop(
    state: &ServeState,
    source: &ReloadSource,
    interval: Duration,
    stop: &AtomicBool,
) {
    let step = Duration::from_millis(20).min(interval);
    while !stop.load(Ordering::Relaxed) {
        let mut slept = Duration::ZERO;
        while slept < interval && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(step);
            slept += step;
        }
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let current = state.current();
        let (model_gen, stats_gen) = source.manifest_generations();
        let model_newer = newer(model_gen, current.model_generation());
        let stats_newer = newer(stats_gen, current.stats_generation());
        if !model_newer && !stats_newer {
            continue;
        }
        match source.builder().load_shared() {
            Ok(fresh) => {
                let epoch = state.install(Arc::clone(&fresh));
                obs::counter!("microbrowse_serve_reloads_total").inc();
                obs::trace::event("serve.reload")
                    .with("epoch", epoch)
                    .with("model_generation", fresh.model_generation().unwrap_or(0))
                    .with("stats_generation", fresh.stats_generation().unwrap_or(0))
                    .with("degraded", fresh.fidelity().is_degraded());
            }
            Err(e) => {
                // Keep serving the old bundle; the failure is visible, not
                // fatal (the slot may be mid-commit or genuinely damaged).
                obs::counter!("microbrowse_serve_reload_failures_total").inc();
                obs::trace::event("serve.reload_failed").with("error", e.to_string());
            }
        }
    }
}

/// Is the manifest generation ahead of what the bundle serves?
fn newer(manifest: Option<u64>, serving: Option<u64>) -> bool {
    match (manifest, serving) {
        (Some(m), Some(s)) => m > s,
        // A slot appeared where the bundle had no generation (e.g. first
        // commit after starting degraded on an empty stats slot).
        (Some(_), None) => true,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microbrowse_core::classifier::{ModelSpec, TrainedClassifier};
    use microbrowse_core::features::OwnedTermFeat;
    use microbrowse_core::serve::{DeployedModel, Fidelity};
    use microbrowse_store::StatsDb;

    fn bundle(weight: f64) -> Arc<ServingBundle> {
        let model = DeployedModel {
            spec: ModelSpec::m1(),
            classifier: TrainedClassifier::Flat(microbrowse_ml::LogReg::from_parts(
                vec![weight],
                0.0,
            )),
            vocab: vec![OwnedTermFeat::Term("cheap".into())],
        };
        Arc::new(ServingBundle::from_parts(model, StatsDb::new(), Fidelity::Full).expect("bundle"))
    }

    #[test]
    fn install_bumps_epoch_and_swaps() {
        let state = ServeState::new(bundle(1.0));
        assert_eq!(state.epoch(), 0);
        let fresh = bundle(2.0);
        assert_eq!(state.install(Arc::clone(&fresh)), 1);
        assert_eq!(state.epoch(), 1);
        assert_eq!(state.reloads(), 1);
        assert!(Arc::ptr_eq(&state.current(), &fresh));
    }

    #[test]
    fn newer_compares_generations() {
        assert!(newer(Some(2), Some(1)));
        assert!(!newer(Some(1), Some(1)));
        assert!(!newer(Some(1), Some(2)));
        assert!(newer(Some(1), None));
        assert!(!newer(None, Some(1)));
        assert!(!newer(None, None));
    }
}
