//! In-process integration tests for the HTTP server: endpoint semantics,
//! backpressure, hot reload under load, degraded health, graceful drain.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use microbrowse_core::classifier::{ModelSpec, TrainedClassifier};
use microbrowse_core::features::OwnedTermFeat;
use microbrowse_core::serve::{
    DeployedModel, Fidelity, LoadPolicy, ServingBundle, MODEL_SLOT_NAME, STATS_SLOT_NAME,
};
use microbrowse_server::client::Client;
use microbrowse_server::{start, BundleSource, ReloadSource, ServerConfig};
use microbrowse_store::{ArtifactSlot, StatsDb};

/// A tiny hand-built model: one term feature ("cheap"), positive weight —
/// any creative containing "cheap" beats one that does not.
fn model(weight: f64) -> DeployedModel {
    DeployedModel {
        spec: ModelSpec::m1(),
        classifier: TrainedClassifier::Flat(microbrowse_ml::LogReg::from_parts(vec![weight], 0.0)),
        vocab: vec![OwnedTermFeat::Term("cheap".into())],
    }
}

fn static_bundle(weight: f64) -> BundleSource {
    BundleSource::Static(Arc::new(
        ServingBundle::from_parts(model(weight), StatsDb::new(), Fidelity::Full).expect("bundle"),
    ))
}

fn tmp(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mb-server-test-{}-{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn commit_model(dir: &Path, weight: f64) -> u64 {
    let slot = ArtifactSlot::new(dir, MODEL_SLOT_NAME);
    model(weight).commit_to_slot(&slot).expect("commit model")
}

#[test]
fn score_rank_version_and_metrics_endpoints() {
    let handle = start(ServerConfig::default(), static_bundle(1.0)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let resp = c
        .post(
            "/v1/score",
            r#"{"r":"cheap flights|book now","s":"flights|book"}"#,
        )
        .expect("score");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let body = resp.body_str();
    assert!(body.contains("\"winner\":\"R\""), "{body}");
    assert!(body.contains("\"score\":"), "{body}");
    assert!(body.contains("\"fidelity\":\"full\""), "{body}");
    assert!(body.contains("\"latency_us\":"), "{body}");

    // Symmetric pair, reversed: S holds the winning term.
    let resp = c
        .post(
            "/v1/score",
            r#"{"r":"flights|book","s":"cheap flights|book now"}"#,
        )
        .expect("score reversed");
    assert!(
        resp.body_str().contains("\"winner\":\"S\""),
        "{}",
        resp.body_str()
    );

    let resp = c
        .post(
            "/v1/rank",
            r#"{"creatives":["flights|standard","cheap flights|save 20%","flights|fees apply"]}"#,
        )
        .expect("rank");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let body = resp.body_str();
    // The "cheap" creative (index 2, 1-based) must rank first.
    assert!(body.contains("\"order\":[2,"), "{body}");

    let resp = c.get("/version").expect("version");
    assert_eq!(resp.status, 200);
    assert!(
        resp.body_str().contains("microbrowse-server"),
        "{}",
        resp.body_str()
    );

    let resp = c.get("/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    let body = resp.body_str();
    assert!(body.contains("microbrowse_http_requests_total"), "{body}");
    assert!(body.contains("microbrowse_http_score_latency_us"), "{body}");
    assert!(
        body.contains("microbrowse_http_connections_total"),
        "{body}"
    );

    let report = handle.shutdown();
    assert_eq!(report.aborted, 0, "{report:?}");
}

#[test]
fn bad_requests_answer_4xx_without_killing_the_connection() {
    let handle = start(ServerConfig::default(), static_bundle(1.0)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let resp = c.post("/v1/score", "{not json").expect("bad json");
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = c
        .post("/v1/score", r#"{"r":"only one side"}"#)
        .expect("missing field");
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = c
        .post("/v1/rank", r#"{"creatives":["just one"]}"#)
        .expect("short rank");
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = c.get("/nope").expect("unknown path");
    assert_eq!(resp.status, 404);
    let resp = c.post("/healthz", "{}").expect("wrong method");
    assert_eq!(resp.status, 405);
    // The same keep-alive connection still serves a good request.
    let resp = c
        .post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#)
        .expect("good after bad");
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    handle.shutdown();
}

#[test]
fn healthz_reports_generations_queue_and_epoch() {
    let dir = tmp("healthz");
    let generation = commit_model(&dir, 1.0);
    let stats_gen = ArtifactSlot::new(&dir, STATS_SLOT_NAME)
        .commit(&microbrowse_store::file::to_bytes(&StatsDb::new()))
        .expect("commit stats");
    let source = ReloadSource {
        model_path: dir.clone(),
        stats_path: Some(dir.clone()),
        policy: LoadPolicy::Strict,
    };
    let handle = start(ServerConfig::default(), BundleSource::Artifacts(source)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let resp = c.get("/healthz").expect("healthz");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let body = resp.body_str();
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(
        body.contains(&format!("\"model_generation\":{generation}")),
        "{body}"
    );
    assert!(
        body.contains(&format!("\"stats_generation\":{stats_gen}")),
        "{body}"
    );
    assert!(body.contains("\"queue_depth\":"), "{body}");
    assert!(body.contains("\"epoch\":0"), "{body}");
    assert!(body.contains("\"reloads\":0"), "{body}");
    assert!(body.contains("\"compiled_features\":"), "{body}");
    assert!(body.contains("\"align_cache_entries\":"), "{body}");
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn saturated_queue_answers_503_with_retry_after() {
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle(1.0)).expect("start");

    // c1 occupies the single worker (idle keep-alive holds it in read for
    // the 2s socket timeout); c2 fills the queue; c3 must be rejected.
    let _c1 = Client::connect(handle.addr()).expect("c1");
    std::thread::sleep(Duration::from_millis(150));
    let _c2 = Client::connect(handle.addr()).expect("c2");
    std::thread::sleep(Duration::from_millis(150));
    let mut c3 = Client::connect(handle.addr()).expect("c3");
    let resp = c3.get("/healthz").expect("rejected request");
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert_eq!(resp.header("retry-after"), Some("1"), "{resp:?}");

    handle.shutdown();
}

#[test]
fn hot_reload_under_load_drops_nothing() {
    let dir = tmp("reload");
    commit_model(&dir, 1.0);
    ArtifactSlot::new(&dir, STATS_SLOT_NAME)
        .commit(&microbrowse_store::file::to_bytes(&StatsDb::new()))
        .expect("commit stats");
    let source = ReloadSource {
        model_path: dir.clone(),
        stats_path: Some(dir.clone()),
        policy: LoadPolicy::Strict,
    };
    let cfg = ServerConfig {
        reload_poll: Duration::from_millis(50),
        ..ServerConfig::default()
    };
    let handle = start(cfg, BundleSource::Artifacts(source)).expect("start");
    let addr = handle.addr();

    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let loaders: Vec<_> = (0..2)
        .map(|_| {
            let (stop, errors, ok) = (Arc::clone(&stop), Arc::clone(&errors), Arc::clone(&ok));
            std::thread::spawn(move || {
                let mut c = match Client::connect(addr) {
                    Ok(c) => c,
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                };
                while !stop.load(Ordering::Relaxed) {
                    match c.post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#) {
                        Ok(r) if r.status == 200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        _ => {
                            errors.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(200));
    let committed = commit_model(&dir, 2.0);
    let deadline = Instant::now() + Duration::from_secs(5);
    let mut probe = Client::connect(addr).expect("probe");
    let mut reloaded = false;
    while Instant::now() < deadline {
        let resp = probe.get("/healthz").expect("healthz");
        if resp
            .body_str()
            .contains(&format!("\"model_generation\":{committed}"))
        {
            reloaded = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    std::thread::sleep(Duration::from_millis(150));
    stop.store(true, Ordering::Relaxed);
    for h in loaders {
        h.join().expect("loader thread");
    }
    assert!(reloaded, "generation {committed} never served");
    assert_eq!(
        errors.load(Ordering::Relaxed),
        0,
        "requests failed across reload"
    );
    assert!(ok.load(Ordering::Relaxed) > 0, "no successful requests");
    assert!(handle.reloads() >= 1);
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn degraded_bundle_makes_healthz_503_with_reason() {
    let dir = tmp("degraded");
    commit_model(&dir, 1.0);
    // Commit a corrupted stats snapshot: valid slot framing around bytes
    // whose payload CRC no longer matches, so the snapshot decoder rejects
    // it and Degrade policy serves term-only.
    let good = microbrowse_store::file::to_bytes(&StatsDb::new());
    let corrupt = microbrowse_faultinject::bit_flip(&good, good.len() / 2, 0x40);
    ArtifactSlot::new(&dir, STATS_SLOT_NAME)
        .commit(&corrupt)
        .expect("commit corrupt stats");

    let source = ReloadSource {
        model_path: dir.clone(),
        stats_path: Some(dir.clone()),
        policy: LoadPolicy::Degrade,
    };
    let handle = start(ServerConfig::default(), BundleSource::Artifacts(source)).expect("start");
    assert!(handle.degraded());
    let mut c = Client::connect(handle.addr()).expect("connect");
    let resp = c.get("/healthz").expect("healthz");
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    let body = resp.body_str();
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"degrade_reason\":"), "{body}");
    // Scoring still works, reporting degraded fidelity per response.
    let resp = c
        .post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#)
        .expect("score");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("\"fidelity\":\"degraded\""),
        "{}",
        resp.body_str()
    );
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

/// Zero every `"latency_us":<digits>` value so wire bodies can be compared
/// byte-for-byte modulo timing.
fn normalize_latency(body: &str) -> String {
    let key = "\"latency_us\":";
    let mut out = String::with_capacity(body.len());
    let mut rest = body;
    while let Some(i) = rest.find(key) {
        out.push_str(&rest[..i + key.len()]);
        out.push('0');
        rest = rest[i + key.len()..].trim_start_matches(|c: char| c.is_ascii_digit());
    }
    out.push_str(rest);
    out
}

#[test]
fn batch_of_one_matches_single_score_byte_for_byte() {
    let handle = start(ServerConfig::default(), static_bundle(1.0)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let single = c
        .post(
            "/v1/score",
            r#"{"r":"cheap flights|book now","s":"flights|book"}"#,
        )
        .expect("score");
    assert_eq!(single.status, 200, "{}", single.body_str());

    let batch = c
        .post(
            "/v1/batch",
            r#"[{"r":"cheap flights|book now","s":"flights|book"}]"#,
        )
        .expect("batch");
    assert_eq!(batch.status, 200, "{}", batch.body_str());
    let body = batch.body_str();
    assert!(body.contains("\"count\":1"), "{body}");

    // The lone result object must be the /v1/score body, byte for byte,
    // once latency (the only nondeterministic field) is zeroed.
    let start_i = body.find("\"results\":[").expect("results array") + "\"results\":[".len();
    let end_i = body.rfind("],\"count\"").expect("count after results");
    let item = &body[start_i..end_i];
    assert_eq!(
        normalize_latency(item),
        normalize_latency(&single.body_str()),
        "batch item diverged from /v1/score"
    );
    handle.shutdown();
}

#[test]
fn batch_over_max_batch_answers_413() {
    let cfg = ServerConfig {
        max_batch: 2,
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle(1.0)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let ok = c
        .post(
            "/v1/batch",
            r#"[{"r":"cheap|a","s":"b|c"},{"r":"x|y","s":"cheap|z"}]"#,
        )
        .expect("batch at cap");
    assert_eq!(ok.status, 200, "{}", ok.body_str());

    let over = c
        .post(
            "/v1/batch",
            r#"[{"r":"a|b","s":"c|d"},{"r":"e|f","s":"g|h"},{"r":"i|j","s":"k|l"}]"#,
        )
        .expect("batch over cap");
    assert_eq!(over.status, 413, "{}", over.body_str());
    let body = over.body_str();
    assert!(body.contains("over the limit of 2"), "{body}");

    // The connection survives the 413.
    let resp = c
        .post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#)
        .expect("score after 413");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    handle.shutdown();
}

#[test]
fn batch_endpoint_and_bad_batch_bodies() {
    let handle = start(ServerConfig::default(), static_bundle(1.0)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let resp = c
        .post(
            "/v1/batch",
            r#"[{"r":"cheap|a","s":"b|c"},{"r":"b|c","s":"cheap|a"}]"#,
        )
        .expect("batch");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    let body = resp.body_str();
    assert!(body.contains("\"winner\":\"R\""), "{body}");
    assert!(body.contains("\"winner\":\"S\""), "{body}");
    assert!(body.contains("\"count\":2"), "{body}");
    assert!(body.contains("\"latency_us\":"), "{body}");

    let resp = c.post("/v1/batch", r#"{"r":"a","s":"b"}"#).expect("object");
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = c.post("/v1/batch", r#"[{"r":"a"}]"#).expect("missing s");
    assert_eq!(resp.status, 400, "{}", resp.body_str());
    let resp = c.get("/v1/batch").expect("wrong method");
    assert_eq!(resp.status, 405);

    // Batch metrics are exported.
    let resp = c.get("/metrics").expect("metrics");
    let body = resp.body_str();
    assert!(body.contains("microbrowse_batch_requests_total"), "{body}");
    assert!(body.contains("microbrowse_batch_items_total"), "{body}");
    assert!(body.contains("microbrowse_batch_size"), "{body}");
    assert!(body.contains("microbrowse_http_batch_latency_us"), "{body}");
    handle.shutdown();
}

#[test]
fn pipelined_scores_are_coalesced_into_batches() {
    use std::io::{Read as _, Write as _};

    let handle = start(ServerConfig::default(), static_bundle(1.0)).expect("start");
    let addr = handle.addr();
    let body = r#"{"r":"cheap|a","s":"b|c"}"#;
    let one = format!(
        "POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    let burst = one.repeat(8);

    // Coalescing needs the burst to land in the server's read buffer in one
    // go; retry a few times in case the kernel splits the segments.
    let mut coalesced = 0u64;
    for _ in 0..5 {
        let mut raw = std::net::TcpStream::connect(addr).expect("connect raw");
        raw.set_nodelay(true).expect("nodelay");
        raw.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        raw.write_all(burst.as_bytes()).expect("write burst");
        let mut buf = Vec::new();
        let mut chunk = [0u8; 4096];
        while bytes_of(&buf, "\"winner\":\"R\"") < 8 {
            let n = raw.read(&mut chunk).expect("read responses");
            assert!(
                n > 0,
                "connection closed early: {}",
                String::from_utf8_lossy(&buf)
            );
            buf.extend_from_slice(&chunk[..n]);
        }
        let text = String::from_utf8_lossy(&buf);
        assert_eq!(bytes_of(&buf, "HTTP/1.1 200"), 8, "{text}");
        drop(raw);

        let mut c = Client::connect(addr).expect("connect");
        let metrics = c.get("/metrics").expect("metrics").body_str();
        coalesced = metric_value(&metrics, "microbrowse_batch_coalesced_total");
        if coalesced > 0 {
            break;
        }
    }
    assert!(coalesced > 0, "no pipelined requests were coalesced");
    handle.shutdown();
}

/// Occurrences of `needle` in `haystack` bytes.
fn bytes_of(haystack: &[u8], needle: &str) -> usize {
    let needle = needle.as_bytes();
    if haystack.len() < needle.len() {
        return 0;
    }
    (0..=haystack.len() - needle.len())
        .filter(|&i| &haystack[i..i + needle.len()] == needle)
        .count()
}

/// The value of a plain counter line in a Prometheus text dump.
fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0)
}

#[test]
fn shutdown_drains_in_flight_and_reports() {
    let handle = start(ServerConfig::default(), static_bundle(1.0)).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let resp = c
        .post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#)
        .expect("score");
    assert_eq!(resp.status, 200);
    drop(c);
    let report = handle.shutdown();
    assert_eq!(report.aborted, 0, "{report:?}");
}
