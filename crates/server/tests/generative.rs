//! Integration tests for the generative surface (`/v1/suggest`,
//! `/v1/explain`) and the v1 error-envelope audit: every non-2xx body on
//! every endpoint must be the one [`ErrorEnvelope`] shape, byte for byte,
//! with a stable machine-readable `code`.
//!
//! [`ErrorEnvelope`]: microbrowse_api::v1::ErrorEnvelope

use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use microbrowse_api::v1::{
    self, ErrorEnvelope, ExplainRequest, ScoreRequest, SpanKind, SpanSide, SuggestRequest,
};
use microbrowse_core::classifier::{ModelSpec, TrainedClassifier};
use microbrowse_core::features::OwnedTermFeat;
use microbrowse_core::serve::{DeployedModel, Fidelity, ServingBundle};
use microbrowse_server::client::Client;
use microbrowse_server::{start, BundleSource, ServerConfig};
use microbrowse_store::{FeatureKey, FeatureStat, StatsDb};

/// A rewrite-capable model over corpus stats where "pricey"→"cheap" is the
/// one CTR-positive substitution: `/v1/suggest` has exactly one good move.
fn generative_bundle() -> BundleSource {
    let stats = StatsDb::from_records([
        (
            FeatureKey::rewrite("cheap", "pricey"),
            FeatureStat { up: 9, down: 1 },
        ),
        (
            FeatureKey::rewrite("book", "find"),
            FeatureStat { up: 3, down: 3 },
        ),
    ]);
    let model = DeployedModel {
        spec: ModelSpec {
            name: "M5",
            terms: true,
            rewrites: true,
            positions: false,
            init_from_stats: false,
        },
        classifier: TrainedClassifier::Flat(microbrowse_ml::LogReg::from_parts(
            vec![2.0, -1.5],
            0.0,
        )),
        vocab: vec![
            OwnedTermFeat::Term("cheap".into()),
            OwnedTermFeat::Term("pricey".into()),
        ],
    };
    BundleSource::Static(Arc::new(
        ServingBundle::from_parts(model, stats, Fidelity::Full).expect("bundle"),
    ))
}

/// The term-only model the older endpoint tests use: no rewrite features,
/// so suggestions are structurally impossible (empty 200, never an error).
fn term_only_bundle() -> BundleSource {
    let model = DeployedModel {
        spec: ModelSpec::m1(),
        classifier: TrainedClassifier::Flat(microbrowse_ml::LogReg::from_parts(vec![1.0], 0.0)),
        vocab: vec![OwnedTermFeat::Term("cheap".into())],
    };
    BundleSource::Static(Arc::new(
        ServingBundle::from_parts(model, StatsDb::new(), Fidelity::Full).expect("bundle"),
    ))
}

#[test]
fn suggest_endpoint_returns_scored_variants() {
    let handle = start(ServerConfig::default(), generative_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let resp = c
        .suggest(&SuggestRequest::new("book pricey flights"))
        .expect("suggest");
    assert!(!resp.suggestions.is_empty(), "expected suggestions");
    let top = &resp.suggestions[0];
    assert_eq!(top.creative, "book cheap flights");
    assert!(top.score > 0.0, "top variant must beat the input");
    assert_eq!(top.rewrites.len(), 1);
    assert_eq!(top.rewrites[0].from, "pricey");
    assert_eq!(top.rewrites[0].to, "cheap");
    assert_eq!(top.rewrites[0].line, 0);
    assert_eq!(top.rewrites[0].pos, 1);
    assert!((top.rewrites[0].delta - top.score).abs() < 1e-9);
    assert_eq!(resp.fidelity, v1::Fidelity::Full);
    // Static bundles carry no artifact generation.
    assert_eq!(resp.generation, None);

    // The raw wire body renders the uniform response tail.
    let raw = c
        .post("/v1/suggest", r#"{"creative":"book pricey flights"}"#)
        .expect("raw suggest");
    assert_eq!(raw.status, 200, "{}", raw.body_str());
    let body = raw.body_str();
    assert!(body.starts_with(r#"{"suggestions":["#), "{body}");
    assert!(body.contains(r#""count":"#), "{body}");
    assert!(body.contains(r#""fidelity":"full""#), "{body}");
    assert!(body.contains(r#""latency_us":"#), "{body}");

    // /version advertises the new surface.
    let version = c.get("/version").expect("version").body_str();
    assert!(version.contains("\"suggest\""), "{version}");
    assert!(version.contains("\"explain\""), "{version}");

    // Suggest latency is exported like the other endpoints'.
    let metrics = c.get("/metrics").expect("metrics").body_str();
    assert!(
        metrics.contains("microbrowse_http_suggest_latency_us"),
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn suggest_knobs_cap_the_search_and_empty_is_a_valid_200() {
    let handle = start(ServerConfig::default(), generative_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // top_k:1 truncates the ranked variants to one.
    let mut req = SuggestRequest::new("book pricey flights");
    req.beam_width = Some(4);
    req.max_depth = Some(1);
    req.top_k = Some(1);
    let resp = c.suggest(&req).expect("suggest");
    assert_eq!(resp.suggestions.len(), 1);

    // A creative with no known rewrites suggests nothing — 200, not 4xx.
    let resp = c
        .suggest(&SuggestRequest::new("unrelated words here"))
        .expect("suggest nothing");
    assert!(resp.suggestions.is_empty());
    handle.shutdown();
}

#[test]
fn term_only_model_suggests_nothing() {
    let handle = start(ServerConfig::default(), term_only_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    let resp = c
        .suggest(&SuggestRequest::new("cheap flights|book now"))
        .expect("suggest");
    assert!(resp.suggestions.is_empty(), "no rewrite features, no moves");
    handle.shutdown();
}

#[test]
fn explain_endpoint_attributes_spans_that_sum_to_the_score() {
    let handle = start(ServerConfig::default(), generative_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    let req = ExplainRequest {
        r: "book cheap flights".into(),
        s: "book pricey flights".into(),
    };
    let exp = c.explain(&req).expect("explain");
    // The explanation decomposes the exact served score.
    let served = c
        .score(&ScoreRequest {
            r: req.r.clone(),
            s: req.s.clone(),
        })
        .expect("score");
    assert_eq!(exp.score, served.score, "explain must match /v1/score");
    let sum: f64 = exp.bias + exp.spans.iter().map(|a| a.contribution).sum::<f64>();
    assert!((sum - exp.score).abs() < 1e-9, "{sum} vs {}", exp.score);

    // Term spans carry side/position; the R-side "cheap" pushes R up.
    let cheap = exp
        .spans
        .iter()
        .find(|a| a.kind == SpanKind::Term && a.text == "cheap")
        .expect("cheap span");
    assert_eq!(cheap.side, SpanSide::R);
    assert_eq!(cheap.line, 0);
    assert_eq!(cheap.pos, 1);
    assert!(cheap.contribution > 0.0);
    // The aligned rewrite span names both sides of the substitution.
    let rewrite = exp
        .spans
        .iter()
        .find(|a| a.kind == SpanKind::Rewrite)
        .expect("rewrite span");
    assert_eq!(rewrite.text, "cheap");
    assert_eq!(rewrite.to.as_deref(), Some("pricey"));
    assert!(rewrite.to_span.is_some());
    assert_eq!(exp.fidelity, v1::Fidelity::Full);
    handle.shutdown();
}

/// Read one raw HTTP response off a fresh socket: status code + body.
fn raw_roundtrip(addr: std::net::SocketAddr, request: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect raw");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    stream.write_all(request).expect("write");
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                let text = String::from_utf8_lossy(&buf);
                if let Some(head_end) = text.find("\r\n\r\n") {
                    if let Some(len) = text[..head_end].lines().find_map(|l| {
                        l.to_ascii_lowercase()
                            .strip_prefix("content-length:")
                            .and_then(|v| v.trim().parse::<usize>().ok())
                    }) {
                        if buf.len() >= head_end + 4 + len {
                            break;
                        }
                    }
                }
            }
        }
    }
    let text = String::from_utf8_lossy(&buf).into_owned();
    let status: u16 = text
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {text:?}"));
    let body = text
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// The audit's core rule: a non-2xx body must be exactly the rendering of
/// the envelope it parses to — same bytes, no extra fields, a `code` set.
fn assert_canonical_envelope(name: &str, body: &str, code: &str) {
    let env = ErrorEnvelope::from_json(body)
        .unwrap_or_else(|e| panic!("{name}: body is not an envelope ({e}): {body}"));
    assert_eq!(
        body,
        env.to_json(),
        "{name}: body is not the canonical envelope rendering"
    );
    assert!(
        env.has_code(code),
        "{name}: wanted code {code:?}, got {:?}",
        env.code
    );
}

#[test]
fn error_envelopes_are_byte_exact_per_status() {
    let cfg = ServerConfig {
        max_batch: 2,
        max_beam: 8,
        max_suggestions: 4,
        ..ServerConfig::default()
    };
    let handle = start(cfg, term_only_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    struct Case {
        name: &'static str,
        method: &'static str,
        path: &'static str,
        headers: &'static [(&'static str, &'static str)],
        body: Option<&'static str>,
        status: u16,
        error: String,
        code: &'static str,
    }
    let syntax_error = ScoreRequest::from_json("{not json")
        .expect_err("malformed JSON must not parse")
        .to_string();
    let cases = [
        Case {
            name: "score body not JSON",
            method: "POST",
            path: "/v1/score",
            headers: &[],
            body: Some("{not json"),
            status: 400,
            error: syntax_error,
            code: v1::CODE_BAD_REQUEST,
        },
        Case {
            name: "score body wrong shape",
            method: "POST",
            path: "/v1/score",
            headers: &[],
            body: Some(r#"{"r":"only one side"}"#),
            status: 400,
            error: v1::SCORE_REQUEST_SHAPE.to_string(),
            code: v1::CODE_BAD_REQUEST,
        },
        Case {
            name: "rank with one creative",
            method: "POST",
            path: "/v1/rank",
            headers: &[],
            body: Some(r#"{"creatives":["just one"]}"#),
            status: 400,
            error: v1::RANK_TOO_FEW.to_string(),
            code: v1::CODE_BAD_REQUEST,
        },
        Case {
            name: "batch body is an object",
            method: "POST",
            path: "/v1/batch",
            headers: &[],
            body: Some(r#"{"r":"a","s":"b"}"#),
            status: 400,
            error: v1::BATCH_REQUEST_SHAPE.to_string(),
            code: v1::CODE_BAD_REQUEST,
        },
        Case {
            name: "suggest body missing creative",
            method: "POST",
            path: "/v1/suggest",
            headers: &[],
            body: Some("{}"),
            status: 400,
            error: v1::SUGGEST_REQUEST_SHAPE.to_string(),
            code: v1::CODE_BAD_REQUEST,
        },
        Case {
            name: "explain body wrong shape",
            method: "POST",
            path: "/v1/explain",
            headers: &[],
            body: Some(r#"{"r":1,"s":2}"#),
            status: 400,
            error: v1::SCORE_REQUEST_SHAPE.to_string(),
            code: v1::CODE_BAD_REQUEST,
        },
        Case {
            name: "malformed deadline header",
            method: "POST",
            path: "/v1/score",
            headers: &[("x-mb-deadline-ms", "nope")],
            body: Some(r#"{"r":"a","s":"b"}"#),
            status: 400,
            error: "x-mb-deadline-ms must be a positive integer (milliseconds)".to_string(),
            code: v1::CODE_BAD_DEADLINE,
        },
        Case {
            name: "unknown path",
            method: "GET",
            path: "/nope",
            headers: &[],
            body: None,
            status: 404,
            error: "no such endpoint: /nope".to_string(),
            code: v1::CODE_NOT_FOUND,
        },
        Case {
            name: "wrong method on suggest",
            method: "GET",
            path: "/v1/suggest",
            headers: &[],
            body: None,
            status: 405,
            error: "method not allowed".to_string(),
            code: v1::CODE_METHOD_NOT_ALLOWED,
        },
        Case {
            name: "wrong method on explain",
            method: "GET",
            path: "/v1/explain",
            headers: &[],
            body: None,
            status: 405,
            error: "method not allowed".to_string(),
            code: v1::CODE_METHOD_NOT_ALLOWED,
        },
        Case {
            name: "batch over cap",
            method: "POST",
            path: "/v1/batch",
            headers: &[],
            body: Some(r#"[{"r":"a","s":"b"},{"r":"c","s":"d"},{"r":"e","s":"f"}]"#),
            status: 413,
            error: "batch of 3 items over the limit of 2".to_string(),
            code: v1::CODE_TOO_LARGE,
        },
        Case {
            name: "beam over cap",
            method: "POST",
            path: "/v1/suggest",
            headers: &[],
            body: Some(r#"{"creative":"a","beam_width":64}"#),
            status: 413,
            error: "beam_width 64 outside [1, 8]".to_string(),
            code: v1::CODE_TOO_LARGE,
        },
        Case {
            name: "depth over cap",
            method: "POST",
            path: "/v1/suggest",
            headers: &[],
            body: Some(r#"{"creative":"a","max_depth":9}"#),
            status: 413,
            error: "max_depth 9 outside [1, 8]".to_string(),
            code: v1::CODE_TOO_LARGE,
        },
        Case {
            name: "top_k over cap",
            method: "POST",
            path: "/v1/suggest",
            headers: &[],
            body: Some(r#"{"creative":"a","top_k":5}"#),
            status: 413,
            error: "top_k 5 outside [1, 4]".to_string(),
            code: v1::CODE_TOO_LARGE,
        },
        Case {
            name: "feedback without a journal",
            method: "POST",
            path: "/v1/feedback",
            headers: &[],
            body: Some("{}"),
            status: 503,
            error: "feedback ingestion disabled (start with --feedback-journal)".to_string(),
            code: v1::CODE_UNAVAILABLE,
        },
    ];

    for case in &cases {
        let headers: Vec<(&str, String)> = case
            .headers
            .iter()
            .map(|(n, v)| (*n, v.to_string()))
            .collect();
        let resp = c
            .request_with_headers(case.method, case.path, &headers, case.body)
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        assert_eq!(
            resp.status,
            case.status,
            "{}: {}",
            case.name,
            resp.body_str()
        );
        let expected = ErrorEnvelope::with_code(case.error.clone(), case.code).to_json();
        assert_eq!(resp.body_str(), expected, "{}", case.name);
        assert_canonical_envelope(case.name, &resp.body_str(), case.code);
    }

    // A body that is not UTF-8 cannot leave the typed client; send it raw.
    let raw = b"POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\n\r\n\xff\xfe";
    let (status, body) = raw_roundtrip(handle.addr(), raw);
    assert_eq!(status, 400, "{body}");
    let expected = ErrorEnvelope::with_code("body is not valid UTF-8", v1::CODE_BAD_REQUEST);
    assert_eq!(body, expected.to_json(), "non-UTF-8 body");

    // The connection survived every table case.
    let resp = c
        .post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#)
        .expect("good after the audit");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    handle.shutdown();
}

#[test]
fn shed_timeout_and_parser_errors_use_the_same_envelope() {
    // 504: a deadline that expired while the request sat queued.
    let handle = start(ServerConfig::default(), term_only_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(80));
    let hdr = [("x-mb-deadline-ms", "20".to_string())];
    let resp = c
        .request_with_headers(
            "POST",
            "/v1/score",
            &hdr,
            Some(r#"{"r":"cheap|a","s":"b|c"}"#),
        )
        .expect("shed response");
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    let expected =
        ErrorEnvelope::with_code("deadline expired in queue", v1::CODE_DEADLINE_EXCEEDED);
    assert_eq!(resp.body_str(), expected.to_json(), "504 shed");
    handle.shutdown();

    // 503 from the accept thread: connection cap reached.
    let cfg = ServerConfig {
        workers: 1,
        max_conns: 2,
        queue_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = start(cfg, term_only_bundle()).expect("start");
    let mut c1 = Client::connect(handle.addr()).expect("c1");
    assert_eq!(
        c1.post("/v1/score", r#"{"r":"cheap|a","s":"b|c"}"#)
            .expect("c1 served")
            .status,
        200
    );
    let _c2 = Client::connect(handle.addr()).expect("c2 queued");
    std::thread::sleep(Duration::from_millis(100));
    let mut c3 = Client::connect(handle.addr()).expect("c3");
    let resp = c3.get("/healthz").expect("rejected");
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    let expected =
        ErrorEnvelope::with_code("server busy, connection limit reached", v1::CODE_OVERLOADED);
    assert_eq!(
        resp.body_str(),
        expected.to_json(),
        "503 accept-thread shed"
    );
    assert!(resp.header("retry-after").is_some());
    handle.shutdown();

    // 408: a request that stalls mid-body past the read timeout.
    let cfg = ServerConfig {
        read_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = start(cfg, term_only_bundle()).expect("start");
    let raw = b"POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Length: 40\r\n\r\n{\"r\":";
    let (status, body) = raw_roundtrip(handle.addr(), raw);
    assert_eq!(status, 408, "{body}");
    let expected = ErrorEnvelope::with_code("request timed out", v1::CODE_TIMEOUT);
    assert_eq!(body, expected.to_json(), "408 mid-request timeout");
    handle.shutdown();

    // 413 from the parser: a declared body over the byte limit.
    let mut cfg = ServerConfig::default();
    cfg.limits.max_body_bytes = 64;
    let handle = start(cfg, term_only_bundle()).expect("start");
    let big = "x".repeat(100);
    let raw = format!(
        "POST /v1/score HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n{big}",
        big.len()
    );
    let (status, body) = raw_roundtrip(handle.addr(), raw.as_bytes());
    assert_eq!(status, 413, "{body}");
    let expected = ErrorEnvelope::with_code("request body over limit", v1::CODE_TOO_LARGE);
    assert_eq!(body, expected.to_json(), "413 parser limit");
    handle.shutdown();
}
