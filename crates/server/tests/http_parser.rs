//! Randomized robustness suite for the HTTP/1.1 parser: whatever bytes a
//! peer sends — truncated, split, corrupted, oversized, or pipelined
//! garbage — the parser must never panic; it answers with a bounded `4xx`
//! error or treats the stream as closed.

use std::io::Cursor;

use microbrowse_faultinject::{Fault, FaultPlan, FaultyReader};
use microbrowse_server::http::{HttpError, Limits, RequestReader};
use proptest::prelude::*;

const VALID: &[u8] =
    b"POST /v1/score HTTP/1.1\r\ncontent-length: 23\r\n\r\n{\"r\":\"a|b\",\"s\":\"c|d\"}ok";

/// Drain every request the reader can produce, panicking only if the
/// parser itself does. Returns (#requests, final error if any).
fn drain<R: std::io::Read>(reader: &mut RequestReader<R>) -> (usize, Option<HttpError>) {
    let mut n = 0;
    loop {
        match reader.next_request() {
            Ok(Some(_)) => {
                n += 1;
                // A byte-soup stream could in principle keep yielding tiny
                // valid requests; bound the walk.
                if n > 64 {
                    return (n, None);
                }
            }
            Ok(None) => return (n, None),
            Err(e) => return (n, Some(e)),
        }
    }
}

proptest! {
    /// Arbitrary byte soup: never panics, never loops forever.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let mut reader = RequestReader::new(Cursor::new(bytes), Limits::default());
        let _ = drain(&mut reader);
    }

    /// A valid request survives any read-size schedule: short reads must
    /// not change what is parsed.
    #[test]
    fn short_reads_do_not_change_the_parse(max in 1usize..8) {
        let plan = FaultPlan::new(vec![Fault::ShortReads { max }]);
        let faulty = FaultyReader::new(Cursor::new(VALID.to_vec()), plan);
        let mut reader = RequestReader::new(faulty, Limits::default());
        let req = reader.next_request()
            .expect("valid request must parse")
            .expect("valid request must be present");
        prop_assert_eq!(req.path(), "/v1/score");
        prop_assert_eq!(&req.body[..], b"{\"r\":\"a|b\",\"s\":\"c|d\"}ok");
    }

    /// Truncation at an arbitrary offset: zero or one parsed request,
    /// then a clean end or a typed error — never a panic.
    #[test]
    fn truncation_never_panics(offset in 0usize..80) {
        let cut = &VALID[..offset.min(VALID.len())];
        let mut reader = RequestReader::new(Cursor::new(cut.to_vec()), Limits::default());
        let (n, err) = drain(&mut reader);
        prop_assert!(n <= 1);
        if offset < VALID.len() {
            // An incomplete request must not be reported as complete.
            prop_assert!(n == 0, "truncated stream yielded a request (err {err:?})");
        }
    }

    /// A mid-stream connection error surfaces as a silent close (no
    /// response bytes owed), never a panic.
    #[test]
    fn connection_kill_never_panics(offset in 0usize..80) {
        let plan = FaultPlan::connection_kill_at(offset.min(VALID.len()));
        let faulty = FaultyReader::new(Cursor::new(VALID.to_vec()), plan);
        let mut reader = RequestReader::new(faulty, Limits::default());
        let (_, err) = drain(&mut reader);
        if let Some(e) = err {
            prop_assert!(e.status().is_none() || e.status() == Some(408), "unexpected {e:?}");
        }
    }

    /// A random bit flip anywhere in the request either still parses (the
    /// flip landed in the body or a value) or produces a typed error.
    #[test]
    fn bit_flips_never_panic(offset in 0usize..VALID.len(), mask in any::<u8>()) {
        let bytes = microbrowse_faultinject::bit_flip(VALID, offset, mask | 1);
        let mut reader = RequestReader::new(Cursor::new(bytes), Limits::default());
        let _ = drain(&mut reader);
    }

    /// Pipelined garbage after a valid request: the first request parses,
    /// the garbage then errors or ends the stream — never a panic.
    #[test]
    fn pipelined_garbage_after_valid_request(tail in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut bytes = VALID.to_vec();
        bytes.extend_from_slice(&tail);
        let mut reader = RequestReader::new(Cursor::new(bytes), Limits::default());
        let first = reader.next_request();
        prop_assert!(matches!(first, Ok(Some(_))), "valid prefix failed: {first:?}");
        let _ = drain(&mut reader);
    }
}

#[test]
fn oversized_head_answers_413() {
    let limits = Limits::default();
    let mut bytes = b"GET /x HTTP/1.1\r\nx-pad: ".to_vec();
    bytes.extend_from_slice(&vec![b'a'; limits.max_head_bytes + 1]);
    bytes.extend_from_slice(b"\r\n\r\n");
    let mut reader = RequestReader::new(Cursor::new(bytes), limits);
    match reader.next_request() {
        Err(e) => assert_eq!(e.status(), Some(413), "{e:?}"),
        other => panic!("oversized head accepted: {other:?}"),
    }
}

#[test]
fn oversized_body_answers_413() {
    let limits = Limits::default();
    let head = format!(
        "POST /v1/score HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
        limits.max_body_bytes + 1
    );
    let mut reader = RequestReader::new(Cursor::new(head.into_bytes()), limits);
    match reader.next_request() {
        Err(e) => assert_eq!(e.status(), Some(413), "{e:?}"),
        other => panic!("oversized body accepted: {other:?}"),
    }
}

#[test]
fn pipelined_requests_parse_in_order() {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"GET /healthz HTTP/1.1\r\n\r\n");
    bytes.extend_from_slice(VALID);
    let mut reader = RequestReader::new(Cursor::new(bytes), Limits::default());
    let first = reader
        .next_request()
        .expect("first request")
        .expect("first present");
    assert_eq!(first.path(), "/healthz");
    let second = reader
        .next_request()
        .expect("second request")
        .expect("second present");
    assert_eq!(second.path(), "/v1/score");
}
