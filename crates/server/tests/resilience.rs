//! Integration tests for the overload-resilience layer: deadline
//! propagation and shed-at-dequeue, the stale-queue reaper, the connection
//! cap, slowloris defense, the `/healthz` overload fields, and the
//! resilient client's retry/breaker behavior against a live server.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use microbrowse_core::classifier::{ModelSpec, TrainedClassifier};
use microbrowse_core::features::OwnedTermFeat;
use microbrowse_core::serve::{DeployedModel, Fidelity, ServingBundle};
use microbrowse_faultinject::{FaultyStream, SocketFault};
use microbrowse_server::client::{
    BreakerConfig, BreakerState, CallError, Client, ResilientClient, RetryPolicy,
};
use microbrowse_server::{start, BundleSource, ServerConfig};
use microbrowse_store::StatsDb;

fn model(weight: f64) -> DeployedModel {
    DeployedModel {
        spec: ModelSpec::m1(),
        classifier: TrainedClassifier::Flat(microbrowse_ml::LogReg::from_parts(vec![weight], 0.0)),
        vocab: vec![OwnedTermFeat::Term("cheap".into())],
    }
}

fn static_bundle() -> BundleSource {
    BundleSource::Static(Arc::new(
        ServingBundle::from_parts(model(1.0), StatsDb::new(), Fidelity::Full).expect("bundle"),
    ))
}

const SCORE_BODY: &str = r#"{"r":"cheap flights|book now","s":"flights|book"}"#;

fn metric_value(metrics: &str, name: &str) -> u64 {
    metrics
        .lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

fn json_u64(body: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let rest = &body[body.find(&pat).unwrap_or_else(|| panic!("{key} in {body}")) + pat.len()..];
    rest.chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number in {body}"))
}

#[test]
fn expired_deadline_is_shed_with_typed_envelope() {
    let handle = start(ServerConfig::default(), static_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // The first request's budget is anchored at connection accept, so
    // sitting idle consumes it: a 20ms budget spent 80ms in the past is
    // expired on arrival and must be shed, not scored.
    std::thread::sleep(Duration::from_millis(80));
    let hdr = [("x-mb-deadline-ms", "20".to_string())];
    let resp = c
        .request_with_headers("POST", "/v1/score", &hdr, Some(SCORE_BODY))
        .expect("shed response still arrives");
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("\"code\":\"deadline_exceeded\""),
        "{}",
        resp.body_str()
    );

    // Shedding preserves keep-alive: the same connection serves the next
    // request, whose budget is anchored at its own first byte.
    let hdr = [("x-mb-deadline-ms", "5000".to_string())];
    let resp = c
        .request_with_headers("POST", "/v1/score", &hdr, Some(SCORE_BODY))
        .expect("follow-up");
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let metrics = c.get("/metrics").expect("metrics").body_str();
    assert_eq!(
        metric_value(&metrics, "microbrowse_http_deadline_exceeded_total"),
        1,
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn malformed_deadline_answers_400_without_killing_the_connection() {
    let handle = start(ServerConfig::default(), static_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    for bad in ["nope", "0", "-5", "9999999999"] {
        let hdr = [("x-mb-deadline-ms", bad.to_string())];
        let resp = c
            .request_with_headers("POST", "/v1/score", &hdr, Some(SCORE_BODY))
            .expect("response");
        assert_eq!(resp.status, 400, "{bad}: {}", resp.body_str());
        assert!(
            resp.body_str().contains("\"code\":\"bad_deadline\""),
            "{bad}: {}",
            resp.body_str()
        );
    }
    let resp = c.post("/v1/score", SCORE_BODY).expect("still alive");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    handle.shutdown();
}

#[test]
fn server_default_deadline_applies_without_header() {
    let cfg = ServerConfig {
        request_deadline: Some(Duration::from_millis(20)),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");
    std::thread::sleep(Duration::from_millis(80));
    // Scoring work is shed under the server-wide default budget...
    let resp = c.post("/v1/score", SCORE_BODY).expect("response");
    assert_eq!(resp.status, 504, "{}", resp.body_str());
    // ...but reads are served regardless: operators poll them under
    // overload, and they are too cheap to be worth shedding.
    let resp = c.get("/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    handle.shutdown();
}

#[test]
fn reaper_sheds_connections_stuck_behind_pinned_workers() {
    let cfg = ServerConfig {
        workers: 1,
        queue_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");

    // Pin the single worker with a keep-alive session.
    let mut pinned = Client::connect(handle.addr()).expect("connect pinned");
    let resp = pinned.post("/v1/score", SCORE_BODY).expect("pin worker");
    assert_eq!(resp.status, 200);

    // A second connection sits in the queue with nobody to dequeue it.
    // The reaper must answer it 503 instead of letting it rot.
    let mut waiting = Client::connect(handle.addr()).expect("connect waiting");
    let started = Instant::now();
    let resp = waiting
        .post("/v1/score", SCORE_BODY)
        .expect("reaper answers");
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("\"code\":\"overloaded\""),
        "{}",
        resp.body_str()
    );
    assert!(resp.header("retry-after").is_some(), "retry-after present");
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shed promptly, not at read timeout: {:?}",
        started.elapsed()
    );

    // The pinned session is still healthy and sees the shed in /metrics.
    let metrics = pinned.get("/metrics").expect("metrics").body_str();
    assert!(
        metric_value(&metrics, "microbrowse_http_reaped_total") >= 1,
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn connection_cap_rejects_at_accept_with_overloaded_code() {
    let cfg = ServerConfig {
        workers: 1,
        max_conns: 2,
        queue_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");

    let mut c1 = Client::connect(handle.addr()).expect("c1");
    let resp = c1.post("/v1/score", SCORE_BODY).expect("c1 served");
    assert_eq!(resp.status, 200);
    let _c2 = Client::connect(handle.addr()).expect("c2 queued");
    // Give the accept thread time to queue c2 (its permit must be held
    // before c3 arrives for the cap to be at its limit).
    std::thread::sleep(Duration::from_millis(100));

    let mut c3 = Client::connect(handle.addr()).expect("c3 connects");
    let resp = c3.get("/healthz").expect("rejected with a response");
    assert_eq!(resp.status, 503, "{}", resp.body_str());
    assert!(
        resp.body_str().contains("\"code\":\"overloaded\""),
        "{}",
        resp.body_str()
    );
    assert!(resp.header("retry-after").is_some());

    let metrics = c1.get("/metrics").expect("metrics").body_str();
    assert!(
        metric_value(&metrics, "microbrowse_http_conn_limit_rejected_total") >= 1,
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn slowloris_client_is_cut_off_by_the_wall_clock_cap() {
    let mut cfg = ServerConfig::default();
    cfg.limits.max_request_wall = Duration::from_millis(300);
    let handle = start(cfg, static_bundle()).expect("start");

    // A client dribbling one byte every 40ms: each read makes progress,
    // so per-read timeouts never fire — only the wall-clock cap stops it.
    let stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut slow = FaultyStream::new(stream).with(SocketFault::TrickleWrites {
        max: 1,
        delay: Duration::from_millis(40),
    });
    let request = format!(
        "POST /v1/score HTTP/1.1\r\nContent-Length: {}\r\n\r\n{}",
        SCORE_BODY.len(),
        SCORE_BODY
    );
    let started = Instant::now();
    // The server answers 408 and closes mid-trickle; the write side then
    // fails. Either way the trickle must not run to completion.
    let _ = slow.write_all(request.as_bytes());
    let mut reply = String::new();
    use std::io::Read;
    let _ = slow.stream().take(256).read_to_string(&mut reply);
    assert!(
        reply.starts_with("HTTP/1.1 408"),
        "wanted 408 from wall cap, got {reply:?}"
    );
    assert!(
        started.elapsed() < Duration::from_secs(3),
        "cut off near the cap, not at trickle completion: {:?}",
        started.elapsed()
    );

    let mut c = Client::connect(handle.addr()).expect("connect");
    let metrics = c.get("/metrics").expect("metrics").body_str();
    assert!(
        metric_value(&metrics, "microbrowse_http_slow_requests_total") >= 1,
        "{metrics}"
    );
    handle.shutdown();
}

#[test]
fn healthz_reports_queue_age_and_open_conns() {
    let cfg = ServerConfig {
        workers: 1,
        queue_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");
    let mut c1 = Client::connect(handle.addr()).expect("c1");
    let body = c1.get("/healthz").expect("healthz").body_str();
    assert_eq!(json_u64(&body, "queue_age_ms"), 0, "{body}");
    assert!(json_u64(&body, "open_conns") >= 1, "{body}");

    // Park a second connection in the queue and watch its age climb.
    let _c2 = Client::connect(handle.addr()).expect("c2 queued");
    std::thread::sleep(Duration::from_millis(120));
    let body = c1.get("/healthz").expect("healthz").body_str();
    assert!(json_u64(&body, "queue_age_ms") >= 50, "{body}");
    assert!(json_u64(&body, "open_conns") >= 2, "{body}");
    handle.shutdown();
}

#[test]
fn resilient_client_breaker_opens_then_recovers_on_probe() {
    // Start on an ephemeral port, remember it, and shut the server down:
    // the client now sees connect-refused.
    let handle = start(ServerConfig::default(), static_bundle()).expect("start");
    let addr = handle.addr();
    let mut rc = ResilientClient::new(addr)
        .with_policy(RetryPolicy {
            max_attempts: 1,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(1),
            treat_posts_idempotent: true,
        })
        .with_breaker(BreakerConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(100),
        });

    let resp = rc
        .call(
            "POST",
            "/v1/score",
            Some(SCORE_BODY),
            Duration::from_secs(2),
        )
        .expect("healthy server answers");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    handle.shutdown();

    for i in 0..3 {
        let got = rc.call(
            "POST",
            "/v1/score",
            Some(SCORE_BODY),
            Duration::from_secs(1),
        );
        assert!(
            matches!(got, Err(CallError::Transport { .. })),
            "call {i}: {got:?}"
        );
    }
    assert_eq!(rc.breaker_state(), BreakerState::Open);
    match rc.call(
        "POST",
        "/v1/score",
        Some(SCORE_BODY),
        Duration::from_secs(1),
    ) {
        Err(CallError::BreakerOpen) => {}
        other => panic!("open breaker must reject without IO, got {other:?}"),
    }

    // Bring the server back on the same port (retry the bind: the OS may
    // take a moment to release it) and let the cooldown elapse: the next
    // call is the half-open probe, and its success closes the breaker.
    std::thread::sleep(Duration::from_millis(120));
    let cfg = ServerConfig {
        addr: addr.to_string(),
        ..ServerConfig::default()
    };
    let handle = (0..50)
        .find_map(|_| {
            start(cfg.clone(), static_bundle()).ok().or_else(|| {
                std::thread::sleep(Duration::from_millis(50));
                None
            })
        })
        .expect("rebind the port");
    let resp = rc
        .call(
            "POST",
            "/v1/score",
            Some(SCORE_BODY),
            Duration::from_secs(2),
        )
        .expect("probe succeeds");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(rc.breaker_state(), BreakerState::Closed);
    handle.shutdown();
}

#[test]
fn resilient_client_propagates_deadline_header_end_to_end() {
    // Prove the client's budget actually travels in X-Mb-Deadline-Ms:
    // send a call whose budget dies while its connection is stuck behind a
    // pinned single worker. The client gives up on its own clock; later,
    // when the worker frees up and dequeues the stale connection, the
    // *server* must shed it as deadline_exceeded — which it can only do by
    // reading the propagated header (the server has no default deadline
    // configured here).
    let cfg = ServerConfig {
        workers: 1,
        read_timeout: Duration::from_millis(400),
        queue_timeout: Duration::from_secs(30),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");

    // Pin the worker: the session holds it until the 400ms idle timeout.
    let mut pinned = Client::connect(handle.addr()).expect("pin");
    assert_eq!(
        pinned.post("/v1/score", SCORE_BODY).expect("pin").status,
        200
    );

    let mut rc = ResilientClient::new(handle.addr()).with_policy(RetryPolicy {
        max_attempts: 1,
        base_backoff: Duration::from_millis(1),
        max_backoff: Duration::from_millis(1),
        treat_posts_idempotent: true,
    });
    let got = rc.call(
        "POST",
        "/v1/score",
        Some(SCORE_BODY),
        Duration::from_millis(100),
    );
    match got {
        // Usual outcome: the budget dies in the queue; the client times
        // out or runs out of budget on its own clock.
        Err(CallError::DeadlineExhausted { .. }) | Err(CallError::Transport { .. }) => {}
        // If the worker freed up just in time, the only correct answer
        // for an expired propagated budget is a shed, never a late score.
        Ok(resp) => assert_eq!(resp.status, 504, "{}", resp.body_str()),
        Err(other) => panic!("unexpected: {other}"),
    }

    // Let the pinned session idle out so the worker dequeues (and sheds)
    // the abandoned connection, then read the counter it bumped.
    std::thread::sleep(Duration::from_millis(700));
    let mut c = Client::connect(handle.addr()).expect("metrics conn");
    let metrics = c.get("/metrics").expect("metrics").body_str();
    assert!(
        metric_value(&metrics, "microbrowse_http_deadline_exceeded_total") >= 1,
        "server never observed the propagated deadline: {metrics}"
    );
    handle.shutdown();
}
