//! End-to-end distributed-tracing tests: one trace id threads
//! `ResilientClient` → accept → queue wait → worker → scoring engine on a
//! live server, survives a client retry, and the `/debug` surface serves
//! back what the flight recorder retained — parsed with the strict
//! `microbrowse-api` wire types, never ad-hoc string poking.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use microbrowse_api::debug::{DebugRequestsResponse, DebugTraceResponse, VersionInfo};
use microbrowse_core::classifier::{ModelSpec, TrainedClassifier};
use microbrowse_core::features::OwnedTermFeat;
use microbrowse_core::serve::{DeployedModel, Fidelity, ServingBundle};
use microbrowse_obs::trace::{self, MemorySink};
use microbrowse_server::client::{Client, ResilientClient, RetryPolicy};
use microbrowse_server::{start, BundleSource, ServerConfig};
use microbrowse_store::StatsDb;

const SCORE_BODY: &str = r#"{"r":"cheap flights|book now","s":"flights|book"}"#;

fn static_bundle() -> BundleSource {
    let model = DeployedModel {
        spec: ModelSpec::m1(),
        classifier: TrainedClassifier::Flat(microbrowse_ml::LogReg::from_parts(vec![1.0], 0.0)),
        vocab: vec![OwnedTermFeat::Term("cheap".into())],
    };
    BundleSource::Static(Arc::new(
        ServingBundle::from_parts(model, StatsDb::new(), Fidelity::Full).expect("bundle"),
    ))
}

// The trace sink is process-global; tests that install one must not
// interleave.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_exclusive() -> MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Install a fresh [`MemorySink`] and return it. Started servers tee the
/// flight recorder *on top of* whatever is installed, so this keeps
/// receiving records after `start()`.
fn memory_sink() -> Arc<MemorySink> {
    let sink = Arc::new(MemorySink::new());
    trace::install_sink(sink.clone());
    sink
}

#[test]
fn one_trace_id_threads_client_to_engine() {
    let _x = obs_exclusive();
    let sink = memory_sink();
    let handle = start(ServerConfig::default(), static_bundle()).expect("start");

    let mut rc = ResilientClient::new(handle.addr());
    let resp = rc
        .call(
            "POST",
            "/v1/score",
            Some(SCORE_BODY),
            Duration::from_secs(5),
        )
        .expect("call");
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let trace = rc.last_trace_id();
    assert_ne!(trace, 0);
    // The server echoes the propagated id on the response.
    assert_eq!(
        resp.header("x-mb-trace-id"),
        Some(trace::format_trace_id(trace).as_str())
    );

    handle.shutdown();
    trace::clear_sink();

    let client_spans: Vec<_> = sink
        .spans_named("client.call")
        .into_iter()
        .filter(|s| s.trace == trace)
        .collect();
    assert_eq!(client_spans.len(), 1, "one client.call span on the trace");
    let server_spans: Vec<_> = sink
        .spans_named("serve.request")
        .into_iter()
        .filter(|s| s.trace == trace)
        .collect();
    assert_eq!(server_spans.len(), 1, "one serve.request span on the trace");
    // Wire-propagated parenting: the server's request span hangs off the
    // client's call span even though it was recorded on another thread
    // behind a TCP hop.
    assert_eq!(server_spans[0].parent, client_spans[0].id);
    // The queue-wait handoff is on the same trace.
    let dequeued: Vec<_> = sink
        .events_named("serve.dequeued")
        .into_iter()
        .filter(|e| e.trace == trace)
        .collect();
    assert_eq!(dequeued.len(), 1, "queue-wait event shares the trace id");
}

/// Accept one connection and answer a bare 503 (after reading the request
/// headers), then tunnel every later connection byte-for-byte to
/// `upstream`.
fn flaky_proxy(upstream: SocketAddr) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind proxy");
    let addr = listener.local_addr().expect("proxy addr");
    std::thread::spawn(move || {
        if let Ok((mut s, _)) = listener.accept() {
            let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
            let mut buf = [0u8; 4096];
            let mut seen = Vec::new();
            while !seen.windows(4).any(|w| w == b"\r\n\r\n") {
                match s.read(&mut buf) {
                    Ok(0) | Err(_) => break,
                    Ok(n) => seen.extend_from_slice(&buf[..n]),
                }
            }
            let _ = s.write_all(
                b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
            );
        }
        while let Ok((conn, _)) = listener.accept() {
            let up = match TcpStream::connect(upstream) {
                Ok(up) => up,
                Err(_) => return,
            };
            let (mut c_read, mut c_write) = (conn.try_clone().expect("clone"), conn);
            let (mut u_read, mut u_write) = (up.try_clone().expect("clone"), up);
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut c_read, &mut u_write);
            });
            std::thread::spawn(move || {
                let _ = std::io::copy(&mut u_read, &mut c_write);
            });
        }
    });
    addr
}

#[test]
fn trace_id_survives_a_retry() {
    let _x = obs_exclusive();
    let sink = memory_sink();
    let handle = start(ServerConfig::default(), static_bundle()).expect("start");
    let proxy = flaky_proxy(handle.addr());

    let mut rc = ResilientClient::new(proxy).with_policy(RetryPolicy {
        max_attempts: 4,
        base_backoff: Duration::from_millis(5),
        max_backoff: Duration::from_millis(20),
        ..RetryPolicy::default()
    });
    let resp = rc
        .call(
            "POST",
            "/v1/score",
            Some(SCORE_BODY),
            Duration::from_secs(5),
        )
        .expect("call through flaky proxy");
    assert_eq!(resp.status, 200, "{}", resp.body_str());

    let trace = rc.last_trace_id();
    assert_eq!(
        resp.header("x-mb-trace-id"),
        Some(trace::format_trace_id(trace).as_str()),
        "the retried attempt still carries the original trace id"
    );

    handle.shutdown();
    trace::clear_sink();

    // The retry decision itself is stamped with the same trace id...
    let retries: Vec<_> = sink
        .events_named("client.retry")
        .into_iter()
        .filter(|e| e.trace == trace)
        .collect();
    assert!(!retries.is_empty(), "a retry event carries the trace id");
    // ...and the server-side request span of the successful attempt still
    // parents onto the one client.call span that covered both attempts.
    let client_spans = sink.spans_named("client.call");
    let call = client_spans
        .iter()
        .find(|s| s.trace == trace)
        .expect("client.call span");
    let server_spans = sink.spans_named("serve.request");
    let served = server_spans
        .iter()
        .find(|s| s.trace == trace)
        .expect("serve.request span");
    assert_eq!(served.parent, call.id);
}

#[test]
fn debug_surface_round_trips_through_api_types() {
    let _x = obs_exclusive();
    let cfg = ServerConfig {
        flight_slow: Duration::from_millis(0),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");
    let mut c = Client::connect(handle.addr()).expect("connect");

    // A force-sampled request is always retained, whatever its latency.
    let resp = c
        .request_tagged(
            "POST",
            "/v1/score",
            &[
                (
                    "x-mb-trace-id",
                    "00000000000000000000000000000abc".to_owned(),
                ),
                ("x-mb-sampled", "1".to_owned()),
                ("x-mb-server-timing", "1".to_owned()),
            ],
            Some(SCORE_BODY),
        )
        .expect("sampled score");
    assert_eq!(resp.status, 200, "{}", resp.body_str());
    assert_eq!(
        resp.header("x-mb-trace-id"),
        Some("00000000000000000000000000000abc")
    );
    let timing = resp.header("x-mb-server-timing").expect("opt-in timing");
    assert!(
        timing.contains("queue=") && timing.contains("score="),
        "{timing}"
    );

    let resp = c.get("/debug/trace?last=32").expect("debug trace");
    assert_eq!(resp.status, 200);
    let traces = DebugTraceResponse::from_json(&resp.body_str()).expect("strict parse");
    let entry = traces
        .traces
        .iter()
        .find(|t| t.trace_id == "00000000000000000000000000000abc")
        .expect("sampled trace retained");
    assert_eq!(entry.status, 200);
    assert_eq!(entry.endpoint, "POST /v1/score");
    assert!(
        entry.spans.iter().any(|s| s.name == "serve.request"),
        "retained trace includes the request span: {:?}",
        entry.spans
    );

    let resp = c.get("/debug/requests").expect("debug requests");
    assert_eq!(resp.status, 200);
    let requests = DebugRequestsResponse::from_json(&resp.body_str()).expect("strict parse");
    let entry = requests
        .requests
        .iter()
        .find(|r| r.trace_id == "00000000000000000000000000000abc")
        .expect("request in access log");
    assert_eq!(entry.method, "POST");
    assert_eq!(entry.path, "/v1/score");
    assert_eq!(
        entry.total_us,
        entry.stages.queue_us
            + entry.stages.parse_us
            + entry.stages.score_us
            + entry.stages.write_us
    );

    let resp = c.get("/version").expect("version");
    let info = VersionInfo::from_json(&resp.body_str()).expect("strict parse");
    assert_eq!(info.name, "microbrowse-server");
    assert_eq!(info.version, env!("CARGO_PKG_VERSION"));
    assert!(info.features.iter().any(|f| f == "flight-recorder"));

    let resp = c.get("/metrics").expect("metrics");
    let body = resp.body_str();
    assert!(body.contains("microbrowse_build_info{version="), "{body}");
    assert!(
        body.contains("microbrowse_trace_write_errors_total"),
        "{body}"
    );

    handle.shutdown();
}

#[test]
fn shed_responses_are_retrievable_from_debug_trace() {
    let _x = obs_exclusive();
    // One worker pinned by a half-sent request, one filler connection
    // occupying the depth-1 queue: every further connection is rejected
    // from the accept thread with an echoed trace id we can look up after.
    let cfg = ServerConfig {
        workers: 1,
        queue_depth: 1,
        read_timeout: Duration::from_millis(300),
        ..ServerConfig::default()
    };
    let handle = start(cfg, static_bundle()).expect("start");

    let pin = TcpStream::connect(handle.addr()).expect("pin connect");
    let _ = (&pin).write_all(b"POST /v1/score HTTP/1.1\r\n");
    std::thread::sleep(Duration::from_millis(50));
    let filler = TcpStream::connect(handle.addr()).expect("filler connect");
    std::thread::sleep(Duration::from_millis(50));

    let mut shed_ids = Vec::new();
    for _ in 0..6 {
        let mut c = match Client::connect(handle.addr()) {
            Ok(c) => c,
            Err(_) => continue,
        };
        if let Ok(resp) = c.post("/v1/score", SCORE_BODY) {
            if resp.status == 503 {
                let id = resp
                    .header("x-mb-trace-id")
                    .expect("shed response echoes a trace id")
                    .to_owned();
                shed_ids.push(id);
            }
        }
    }
    assert!(!shed_ids.is_empty(), "at least one request was shed");

    // Unpin the worker and let it burn through the dead connections.
    drop(pin);
    drop(filler);
    let resp = loop {
        let attempt = Client::connect(handle.addr())
            .ok()
            .and_then(|mut c| c.get("/debug/trace?last=64").ok());
        match attempt {
            // The GET itself can be shed while the queue recovers.
            Some(resp) if resp.status == 200 => break resp,
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let traces = DebugTraceResponse::from_json(&resp.body_str()).expect("strict parse");
    for id in &shed_ids {
        let entry = traces
            .traces
            .iter()
            .find(|t| &t.trace_id == id)
            .unwrap_or_else(|| panic!("shed trace {id} not retained"));
        assert_eq!(entry.reason, "shed");
        assert_eq!(entry.status, 503);
    }

    handle.shutdown();
}
