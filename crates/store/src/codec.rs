//! Binary encoding of keys and records.
//!
//! Layout choices are the usual storage-engine ones: LEB128 varints for
//! counts and lengths (most features are rare, so counts are small),
//! length-prefixed UTF-8 for phrases, and a one-byte family tag
//! discriminating [`FeatureKey`] variants. All multi-byte fixed-width
//! integers are little-endian via `bytes`.

use bytes::{Buf, BufMut};

use crate::key::{FeatureKey, KeyFamily, SnippetPos};
use crate::stats::FeatureStat;

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEof,
    /// A varint ran past 10 bytes (not a valid LEB128 u64).
    VarintOverflow,
    /// A phrase was not valid UTF-8.
    InvalidUtf8,
    /// An unknown key-family tag.
    UnknownTag(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => write!(f, "unexpected end of input"),
            DecodeError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            DecodeError::InvalidUtf8 => write!(f, "phrase is not valid UTF-8"),
            DecodeError::UnknownTag(t) => write!(f, "unknown feature-key tag {t}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append a LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a LEB128 varint.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, DecodeError> {
    let mut out: u64 = 0;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(DecodeError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        out |= u64::from(byte & 0x7F) << shift;
        if byte & 0x80 == 0 {
            return Ok(out);
        }
    }
    Err(DecodeError::VarintOverflow)
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Read a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> Result<String, DecodeError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(DecodeError::UnexpectedEof);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| DecodeError::InvalidUtf8)
}

fn put_pos(buf: &mut impl BufMut, p: SnippetPos) {
    buf.put_u8(p.line);
    put_varint(buf, u64::from(p.pos));
}

fn get_pos(buf: &mut impl Buf) -> Result<SnippetPos, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof);
    }
    let line = buf.get_u8();
    let pos = get_varint(buf)?;
    Ok(SnippetPos {
        line,
        pos: pos.min(u64::from(u16::MAX)) as u16,
    })
}

/// Encode a [`FeatureKey`].
pub fn put_key(buf: &mut impl BufMut, key: &FeatureKey) {
    buf.put_u8(key.family().tag());
    match key {
        FeatureKey::Term { phrase } => put_str(buf, phrase),
        FeatureKey::Rewrite { from, to } => {
            put_str(buf, from);
            put_str(buf, to);
        }
        FeatureKey::TermPosition(p) => put_pos(buf, *p),
        FeatureKey::RewritePosition { from, to } => {
            put_pos(buf, *from);
            put_pos(buf, *to);
        }
    }
}

/// Decode a [`FeatureKey`].
pub fn get_key(buf: &mut impl Buf) -> Result<FeatureKey, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEof);
    }
    let tag = buf.get_u8();
    let family = KeyFamily::from_tag(tag).ok_or(DecodeError::UnknownTag(tag))?;
    Ok(match family {
        KeyFamily::Term => FeatureKey::Term {
            phrase: get_str(buf)?,
        },
        KeyFamily::Rewrite => FeatureKey::Rewrite {
            from: get_str(buf)?,
            to: get_str(buf)?,
        },
        KeyFamily::TermPosition => FeatureKey::TermPosition(get_pos(buf)?),
        KeyFamily::RewritePosition => FeatureKey::RewritePosition {
            from: get_pos(buf)?,
            to: get_pos(buf)?,
        },
    })
}

/// Encode one `(key, stat)` record.
pub fn put_record(buf: &mut impl BufMut, key: &FeatureKey, stat: &FeatureStat) {
    put_key(buf, key);
    put_varint(buf, stat.up);
    put_varint(buf, stat.down);
}

/// Decode one `(key, stat)` record.
pub fn get_record(buf: &mut impl Buf) -> Result<(FeatureKey, FeatureStat), DecodeError> {
    let key = get_key(buf)?;
    let up = get_varint(buf)?;
    let down = get_varint(buf)?;
    Ok((key, FeatureStat { up, down }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn round_trip_key(key: FeatureKey) {
        let mut buf = BytesMut::new();
        put_key(&mut buf, &key);
        let mut slice = buf.freeze();
        let back = get_key(&mut slice).expect("decode");
        assert_eq!(back, key);
        assert_eq!(slice.remaining(), 0, "trailing bytes after {key:?}");
    }

    #[test]
    fn varint_round_trip_edges() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_varint(&mut buf, v);
            let mut s = buf.freeze();
            assert_eq!(get_varint(&mut s).unwrap(), v);
        }
    }

    #[test]
    fn varint_rejects_overlong() {
        let eleven = [0x80u8; 11];
        let mut s = &eleven[..];
        assert_eq!(get_varint(&mut s), Err(DecodeError::VarintOverflow));
    }

    #[test]
    fn varint_eof() {
        let mut s: &[u8] = &[0x80];
        assert_eq!(get_varint(&mut s), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn string_round_trip() {
        for s in ["", "a", "find cheap flights", "zürich 20% café"] {
            let mut buf = BytesMut::new();
            put_str(&mut buf, s);
            let mut slice = buf.freeze();
            assert_eq!(get_str(&mut slice).unwrap(), s);
        }
    }

    #[test]
    fn string_truncated_is_eof() {
        let mut buf = BytesMut::new();
        put_str(&mut buf, "hello world");
        let frozen = buf.freeze();
        let mut short = frozen.slice(..frozen.len() - 3);
        assert_eq!(get_str(&mut short), Err(DecodeError::UnexpectedEof));
    }

    #[test]
    fn string_invalid_utf8() {
        let mut buf = BytesMut::new();
        put_varint(&mut buf, 2);
        buf.put_slice(&[0xFF, 0xFE]);
        let mut s = buf.freeze();
        assert_eq!(get_str(&mut s), Err(DecodeError::InvalidUtf8));
    }

    #[test]
    fn all_key_variants_round_trip() {
        round_trip_key(FeatureKey::term("get discounts"));
        round_trip_key(FeatureKey::term(""));
        round_trip_key(FeatureKey::rewrite("find cheap", "get discounts"));
        round_trip_key(FeatureKey::term_position(2, 1000));
        round_trip_key(FeatureKey::rewrite_position(
            SnippetPos::new(1, 0),
            SnippetPos::new(1, 5),
        ));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut s: &[u8] = &[42];
        assert_eq!(get_key(&mut s), Err(DecodeError::UnknownTag(42)));
    }

    #[test]
    fn record_round_trip() {
        let key = FeatureKey::rewrite("flights", "flying");
        let stat = FeatureStat {
            up: 12_345,
            down: 7,
        };
        let mut buf = BytesMut::new();
        put_record(&mut buf, &key, &stat);
        let mut s = buf.freeze();
        assert_eq!(get_record(&mut s).unwrap(), (key, stat));
    }
}
