//! CRC-32 (IEEE 802.3) checksum.
//!
//! Snapshot files carry a CRC over their payload so a truncated or corrupted
//! statistics database is detected at load time instead of silently skewing
//! every downstream model. Implemented in-tree (the classic table-driven
//! reflected algorithm, polynomial `0xEDB88320`) to stay inside the
//! workspace's approved dependency set.

/// Streaming CRC-32 state.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh state.
    pub fn new() -> Self {
        Self { state: 0xFFFF_FFFF }
    }

    /// Feed bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.state;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.state = c;
    }

    /// Finish and return the checksum.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// One-shot convenience.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_equals_oneshot() {
        let data = b"feature statistics database";
        let mut c = Crc32::new();
        c.update(&data[..7]);
        c.update(&data[7..]);
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn detects_bit_flips() {
        let a = crc32(b"up=3 down=1");
        let b = crc32(b"up=3 down=2");
        assert_ne!(a, b);
    }
}
