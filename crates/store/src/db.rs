//! The in-memory statistics database and its concurrent builder.
//!
//! [`StatsDb`] is the frozen, read-optimized store Phase 2 consults when
//! extracting features and initializing classifier weights. It is built
//! either directly (single-threaded) or through [`ShardedBuilder`], which
//! lets the corpus scan record observations from many threads: keys are
//! routed to one of N mutex-guarded shards by hash, so contention is
//! `1/N`-th of a single global lock. This is the same pattern a write path
//! of a real KV store would use for a hot aggregation.

use std::hash::{BuildHasher, BuildHasherDefault};

use microbrowse_text::hash::{FxHashMap, FxHasher};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::key::{FeatureKey, KeyFamily};
use crate::stats::FeatureStat;

/// The frozen feature statistics database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StatsDb {
    map: FxHashMap<FeatureKey, FeatureStat>,
}

impl StatsDb {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an iterator of records, merging duplicate keys.
    pub fn from_records(records: impl IntoIterator<Item = (FeatureKey, FeatureStat)>) -> Self {
        let mut db = Self::new();
        for (k, s) in records {
            db.map.entry(k).or_default().merge(&s);
        }
        db
    }

    /// Record one `delta-sw` observation for `key`.
    pub fn record(&mut self, key: FeatureKey, positive: bool) {
        self.map.entry(key).or_default().record(positive);
    }

    /// Look up a feature's counts.
    pub fn get(&self, key: &FeatureKey) -> Option<&FeatureStat> {
        self.map.get(key)
    }

    /// The log odds-ratio for `key` under Laplace smoothing `alpha`, or 0.0
    /// (uninformative) for unseen features. This is the lookup used to
    /// initialize classifier weights.
    pub fn log_odds(&self, key: &FeatureKey, alpha: f64) -> f64 {
        self.map.get(key).map_or(0.0, |s| s.log_odds(alpha))
    }

    /// Number of distinct features.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate all records (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = (&FeatureKey, &FeatureStat)> {
        self.map.iter()
    }

    /// Merge another database into this one.
    pub fn merge(&mut self, other: StatsDb) {
        for (k, s) in other.map {
            self.map.entry(k).or_default().merge(&s);
        }
    }

    /// Records in deterministic (sorted-key) order — used by the snapshot
    /// writer so byte-identical inputs produce byte-identical files.
    pub fn sorted_records(&self) -> Vec<(FeatureKey, FeatureStat)> {
        let mut v: Vec<(FeatureKey, FeatureStat)> =
            self.map.iter().map(|(k, s)| (k.clone(), *s)).collect();
        v.sort_by(|a, b| a.0.cmp(&b.0));
        v
    }

    /// Per-family record counts (reporting / sanity checks).
    pub fn family_counts(&self) -> FxHashMap<KeyFamily, usize> {
        let mut out: FxHashMap<KeyFamily, usize> = FxHashMap::default();
        for k in self.map.keys() {
            *out.entry(k.family()).or_insert(0) += 1;
        }
        out
    }

    /// Total observations across all features.
    pub fn total_observations(&self) -> u64 {
        self.map.values().map(FeatureStat::total).sum()
    }

    /// Drop features with fewer than `min_total` observations, returning
    /// how many were removed. Rare features carry almost no evidence but
    /// dominate the key space (Zipf), so pruning keeps snapshots small with
    /// negligible effect on downstream initialization (which thresholds on
    /// support anyway).
    pub fn prune(&mut self, min_total: u64) -> usize {
        let before = self.map.len();
        self.map.retain(|_, s| s.total() >= min_total);
        before - self.map.len()
    }
}

/// A sharded, thread-safe accumulator that freezes into a [`StatsDb`].
#[derive(Debug)]
pub struct ShardedBuilder {
    shards: Vec<Mutex<FxHashMap<FeatureKey, FeatureStat>>>,
    hasher: BuildHasherDefault<FxHasher>,
}

impl ShardedBuilder {
    /// Create a builder with `num_shards` shards (rounded up to ≥ 1).
    pub fn new(num_shards: usize) -> Self {
        let n = num_shards.max(1);
        Self {
            shards: (0..n).map(|_| Mutex::new(FxHashMap::default())).collect(),
            hasher: BuildHasherDefault::<FxHasher>::default(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &FeatureKey) -> usize {
        let h = self.hasher.hash_one(key);
        (h % self.shards.len() as u64) as usize
    }

    /// Record one observation; safe to call from any thread.
    pub fn record(&self, key: FeatureKey, positive: bool) {
        let idx = self.shard_for(&key);
        self.shards[idx]
            .lock()
            .entry(key)
            .or_default()
            .record(positive);
    }

    /// Record a batch (one lock acquisition per touched shard on average —
    /// the batch is grouped by shard first).
    pub fn record_batch(&self, batch: impl IntoIterator<Item = (FeatureKey, bool)>) {
        let mut grouped: Vec<Vec<(FeatureKey, bool)>> = vec![Vec::new(); self.shards.len()];
        for (k, p) in batch {
            grouped[self.shard_for(&k)].push((k, p));
        }
        for (idx, group) in grouped.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut shard = self.shards[idx].lock();
            for (k, p) in group {
                shard.entry(k).or_default().record(p);
            }
        }
    }

    /// Freeze into a read-only [`StatsDb`].
    pub fn freeze(self) -> StatsDb {
        let mut map: FxHashMap<FeatureKey, FeatureStat> = FxHashMap::default();
        for shard in self.shards {
            for (k, s) in shard.into_inner() {
                map.entry(k).or_default().merge(&s);
            }
        }
        StatsDb { map }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_lookup() {
        let mut db = StatsDb::new();
        db.record(FeatureKey::term("cheap"), true);
        db.record(FeatureKey::term("cheap"), true);
        db.record(FeatureKey::term("cheap"), false);
        let s = db.get(&FeatureKey::term("cheap")).unwrap();
        assert_eq!((s.up, s.down), (2, 1));
        assert!(db.log_odds(&FeatureKey::term("cheap"), 1.0) > 0.0);
        assert_eq!(db.log_odds(&FeatureKey::term("unseen"), 1.0), 0.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = StatsDb::new();
        a.record(FeatureKey::term("x"), true);
        let mut b = StatsDb::new();
        b.record(FeatureKey::term("x"), false);
        b.record(FeatureKey::term("y"), true);
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.get(&FeatureKey::term("x")).unwrap().total(), 2);
        assert_eq!(a.total_observations(), 3);
    }

    #[test]
    fn from_records_merges_duplicates() {
        let db = StatsDb::from_records([
            (FeatureKey::term("a"), FeatureStat { up: 1, down: 0 }),
            (FeatureKey::term("a"), FeatureStat { up: 0, down: 2 }),
        ]);
        assert_eq!(db.len(), 1);
        assert_eq!(
            db.get(&FeatureKey::term("a")).unwrap(),
            &FeatureStat { up: 1, down: 2 }
        );
    }

    #[test]
    fn sorted_records_are_deterministic() {
        let mut db = StatsDb::new();
        db.record(FeatureKey::term("b"), true);
        db.record(FeatureKey::term("a"), true);
        db.record(FeatureKey::term_position(0, 1), false);
        let r1 = db.sorted_records();
        let r2 = db.sorted_records();
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 3);
        assert!(r1.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn family_counts() {
        let mut db = StatsDb::new();
        db.record(FeatureKey::term("a"), true);
        db.record(FeatureKey::term("b"), true);
        db.record(FeatureKey::rewrite("a", "b"), true);
        let fc = db.family_counts();
        assert_eq!(fc.get(&KeyFamily::Term), Some(&2));
        assert_eq!(fc.get(&KeyFamily::Rewrite), Some(&1));
        assert_eq!(fc.get(&KeyFamily::TermPosition), None);
    }

    #[test]
    fn sharded_builder_matches_sequential() {
        let builder = ShardedBuilder::new(8);
        std::thread::scope(|scope| {
            for t in 0..4 {
                let b = &builder;
                scope.spawn(move || {
                    for i in 0..250 {
                        b.record(
                            FeatureKey::term(format!("term-{}", i % 20)),
                            (i + t) % 3 == 0,
                        );
                    }
                });
            }
        });
        let db = builder.freeze();
        assert_eq!(db.len(), 20);
        assert_eq!(db.total_observations(), 1000);
    }

    #[test]
    fn record_batch_equivalent_to_singles() {
        let b1 = ShardedBuilder::new(4);
        let b2 = ShardedBuilder::new(4);
        let obs: Vec<(FeatureKey, bool)> = (0..100)
            .map(|i| (FeatureKey::term(format!("t{}", i % 7)), i % 2 == 0))
            .collect();
        for (k, p) in obs.clone() {
            b1.record(k, p);
        }
        b2.record_batch(obs);
        assert_eq!(b1.freeze().sorted_records(), b2.freeze().sorted_records());
    }

    #[test]
    fn prune_drops_rare_features() {
        let mut db = StatsDb::new();
        for _ in 0..5 {
            db.record(FeatureKey::term("common"), true);
        }
        db.record(FeatureKey::term("rare"), true);
        let removed = db.prune(3);
        assert_eq!(removed, 1);
        assert!(db.get(&FeatureKey::term("common")).is_some());
        assert!(db.get(&FeatureKey::term("rare")).is_none());
        // Pruning at 0 is a no-op.
        assert_eq!(db.prune(0), 0);
    }

    #[test]
    fn zero_shards_rounds_up() {
        let b = ShardedBuilder::new(0);
        assert_eq!(b.num_shards(), 1);
        b.record(FeatureKey::term("x"), true);
        assert_eq!(b.freeze().len(), 1);
    }
}
