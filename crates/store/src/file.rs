//! Snapshot serialization.
//!
//! A snapshot is the on-disk form of a [`StatsDb`], written once at the end
//! of Phase 1 and read at the start of Phase 2 (or by later experiment
//! runs). Format:
//!
//! ```text
//! +--------------------+ 8 bytes  magic  "MBSTATS\0"
//! | header             | 4 bytes  format version (LE u32)
//! +--------------------+
//! | payload            | varint record count, then records
//! |                    | (codec::put_record each)
//! +--------------------+
//! | trailer            | 4 bytes  CRC-32 of payload (LE u32)
//! +--------------------+
//! ```
//!
//! Records are written in sorted key order, so the same database always
//! produces the same bytes (important for reproducible experiment bundles
//! and for content-addressed caching).

use std::io::Read;
use std::path::Path;

use bytes::{Buf, BytesMut};

use crate::codec::{self, DecodeError};
use crate::crc::crc32;
use crate::db::StatsDb;

const MAGIC: &[u8; 8] = b"MBSTATS\0";
const VERSION: u32 = 1;

/// Errors arising from snapshot IO and validation.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// The file does not begin with the snapshot magic.
    BadMagic,
    /// The format version is newer than this build understands.
    UnsupportedVersion(u32),
    /// The payload checksum does not match the trailer.
    ChecksumMismatch {
        /// CRC recorded in the file trailer.
        expected: u32,
        /// CRC computed over the payload actually read.
        actual: u32,
    },
    /// A record failed to decode.
    Decode(DecodeError),
    /// The file ended before the declared record count was read.
    Truncated,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot io error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a stats snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot corrupt: crc {actual:#010x} != recorded {expected:#010x}"
                )
            }
            SnapshotError::Decode(e) => write!(f, "snapshot record decode failed: {e}"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            SnapshotError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

/// Serialize `db` to bytes (header + payload + CRC trailer).
pub fn to_bytes(db: &StatsDb) -> Vec<u8> {
    let mut payload = BytesMut::new();
    let records = db.sorted_records();
    codec::put_varint(&mut payload, records.len() as u64);
    for (key, stat) in &records {
        codec::put_record(&mut payload, key, stat);
    }

    let mut out = Vec::with_capacity(MAGIC.len() + 4 + payload.len() + 4);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let checksum = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Deserialize a snapshot produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<StatsDb, SnapshotError> {
    if bytes.len() < MAGIC.len() + 4 + 4 {
        return Err(SnapshotError::Truncated);
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let mut version_bytes = [0u8; 4];
    version_bytes.copy_from_slice(&bytes[MAGIC.len()..MAGIC.len() + 4]);
    let version = u32::from_le_bytes(version_bytes);
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }

    let payload = &bytes[MAGIC.len() + 4..bytes.len() - 4];
    let mut trailer = [0u8; 4];
    trailer.copy_from_slice(&bytes[bytes.len() - 4..]);
    let expected = u32::from_le_bytes(trailer);
    let actual = crc32(payload);
    if expected != actual {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }

    let mut buf = payload;
    let count = codec::get_varint(&mut buf)?;
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for _ in 0..count {
        if !buf.has_remaining() {
            return Err(SnapshotError::Truncated);
        }
        records.push(codec::get_record(&mut buf)?);
    }
    Ok(StatsDb::from_records(records))
}

/// Write a snapshot of `db` to `path`, crash-safely (temp file + fsync +
/// atomic rename; see [`crate::slot::write_atomic`]). A crash mid-write
/// leaves either the previous snapshot or the complete new one.
pub fn write_snapshot(db: &StatsDb, path: &Path) -> Result<(), SnapshotError> {
    crate::slot::write_atomic(path, &to_bytes(db))?;
    Ok(())
}

/// Read a snapshot from `path`.
pub fn read_snapshot(path: &Path) -> Result<StatsDb, SnapshotError> {
    let mut bytes = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut bytes)?;
    from_bytes(&bytes)
}

/// Merge several snapshots into one database (counts add), the way
/// incremental corpus refreshes combine a new time window's statistics with
/// the existing ones. Fails on the first unreadable snapshot.
pub fn merge_snapshots<P: AsRef<Path>>(paths: &[P]) -> Result<StatsDb, SnapshotError> {
    let mut merged = StatsDb::new();
    for p in paths {
        merged.merge(read_snapshot(p.as_ref())?);
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FeatureKey;

    fn sample_db() -> StatsDb {
        let mut db = StatsDb::new();
        for i in 0..50 {
            for _ in 0..=(i % 4) {
                db.record(FeatureKey::term(format!("term {i}")), i % 3 != 0);
            }
        }
        db.record(FeatureKey::rewrite("find cheap", "get discounts"), true);
        db.record(FeatureKey::term_position(1, 4), false);
        db
    }

    #[test]
    fn bytes_round_trip() {
        let db = sample_db();
        let bytes = to_bytes(&db);
        let back = from_bytes(&bytes).expect("round trip");
        assert_eq!(db.sorted_records(), back.sorted_records());
    }

    #[test]
    fn serialization_is_deterministic() {
        let db = sample_db();
        assert_eq!(to_bytes(&db), to_bytes(&db));
    }

    #[test]
    fn empty_db_round_trips() {
        let db = StatsDb::new();
        let back = from_bytes(&to_bytes(&db)).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = to_bytes(&sample_db());
        bytes[0] = b'X';
        assert!(matches!(from_bytes(&bytes), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut bytes = to_bytes(&sample_db());
        bytes[8] = 99;
        assert!(matches!(
            from_bytes(&bytes),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn corruption_detected() {
        let mut bytes = to_bytes(&sample_db());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        match from_bytes(&bytes) {
            // Either the CRC catches it (almost always) or, if the flip
            // lands in the trailer itself, the mismatch is still reported.
            Err(SnapshotError::ChecksumMismatch { .. }) => {}
            other => panic!("corruption not detected: {other:?}"),
        }
    }

    #[test]
    fn truncation_detected() {
        let bytes = to_bytes(&sample_db());
        for cut in [0, 5, 11, bytes.len() - 5] {
            let res = from_bytes(&bytes[..cut]);
            assert!(res.is_err(), "truncation at {cut} not detected");
        }
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join(format!("mbstats-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("stats.mbs");
        let db = sample_db();
        write_snapshot(&db, &path).expect("write");
        let back = read_snapshot(&path).expect("read");
        assert_eq!(db.sorted_records(), back.sorted_records());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_snapshots_adds_counts() {
        let dir = std::env::temp_dir().join(format!("mbstats-merge-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut a = StatsDb::new();
        a.record(FeatureKey::term("x"), true);
        a.record(FeatureKey::term("y"), false);
        let mut b = StatsDb::new();
        b.record(FeatureKey::term("x"), false);
        let pa = dir.join("a.mbs");
        let pb = dir.join("b.mbs");
        write_snapshot(&a, &pa).unwrap();
        write_snapshot(&b, &pb).unwrap();
        let merged = merge_snapshots(&[&pa, &pb]).expect("merge");
        assert_eq!(merged.get(&FeatureKey::term("x")).unwrap().total(), 2);
        assert_eq!(merged.get(&FeatureKey::term("y")).unwrap().total(), 1);
        // A missing member fails the whole merge.
        assert!(merge_snapshots(&[pa, dir.join("missing.mbs")]).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let res = read_snapshot(Path::new("/nonexistent/dir/stats.mbs"));
        assert!(matches!(res, Err(SnapshotError::Io(_))));
    }
}
