//! The feature key space.
//!
//! §V-C enumerates the feature families the statistics database covers:
//! term features, rewrite features, and position features — the latter "for
//! positions of terms and position pairs (source position and target
//! position) for rewrites".
//!
//! Keys store phrases as owned strings (not interner symbols) because the
//! database outlives any one process's interner: it is written to disk in
//! Phase 1 and read back in Phase 2.

use serde::{Deserialize, Serialize};

/// A position inside a snippet: zero-based line and token position. `pos`
/// is bucketed by the caller if desired (raw token index by default).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SnippetPos {
    /// Zero-based line number.
    pub line: u8,
    /// Zero-based token position within the line.
    pub pos: u16,
}

impl SnippetPos {
    /// Convenience constructor.
    pub fn new(line: u8, pos: u16) -> Self {
        Self { line, pos }
    }
}

/// A key in the feature statistics database.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FeatureKey {
    /// An n-gram phrase, position-independent ("find cheap").
    Term {
        /// Normalized space-joined phrase.
        phrase: String,
    },
    /// A phrase rewrite, position-independent ("find cheap" → "get
    /// discounts"). §V-D.1: rewrite statistics are collected "independent of
    /// position of the rewrite terms, to handle sparsity issues".
    Rewrite {
        /// Phrase in the lower-serve-weight direction's source snippet R.
        from: String,
        /// Phrase it was rewritten to in snippet S.
        to: String,
    },
    /// A term position — how much does *any* term at this (line, pos) move
    /// serve weight. Feeds the position-feature initialization of Eq. 8.
    TermPosition(SnippetPos),
    /// A rewrite position pair — source position in R, target position in S.
    RewritePosition {
        /// Position of the rewritten-from phrase in R.
        from: SnippetPos,
        /// Position of the rewritten-to phrase in S.
        to: SnippetPos,
    },
}

impl FeatureKey {
    /// Term key from anything string-ish.
    pub fn term(phrase: impl Into<String>) -> Self {
        FeatureKey::Term {
            phrase: phrase.into(),
        }
    }

    /// Rewrite key.
    pub fn rewrite(from: impl Into<String>, to: impl Into<String>) -> Self {
        FeatureKey::Rewrite {
            from: from.into(),
            to: to.into(),
        }
    }

    /// Term-position key.
    pub fn term_position(line: u8, pos: u16) -> Self {
        FeatureKey::TermPosition(SnippetPos::new(line, pos))
    }

    /// Rewrite-position key.
    pub fn rewrite_position(from: SnippetPos, to: SnippetPos) -> Self {
        FeatureKey::RewritePosition { from, to }
    }

    /// A small discriminant used by the codec and by family-level reporting.
    pub fn family(&self) -> KeyFamily {
        match self {
            FeatureKey::Term { .. } => KeyFamily::Term,
            FeatureKey::Rewrite { .. } => KeyFamily::Rewrite,
            FeatureKey::TermPosition(_) => KeyFamily::TermPosition,
            FeatureKey::RewritePosition { .. } => KeyFamily::RewritePosition,
        }
    }
}

/// The four feature families of §V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyFamily {
    /// Position-independent n-gram presence.
    Term,
    /// Position-independent phrase rewrite.
    Rewrite,
    /// (line, pos) of a term.
    TermPosition,
    /// (line, pos) → (line, pos) of a rewrite.
    RewritePosition,
}

impl KeyFamily {
    /// Stable one-byte tag for the binary codec.
    pub fn tag(self) -> u8 {
        match self {
            KeyFamily::Term => 0,
            KeyFamily::Rewrite => 1,
            KeyFamily::TermPosition => 2,
            KeyFamily::RewritePosition => 3,
        }
    }

    /// Inverse of [`KeyFamily::tag`].
    pub fn from_tag(tag: u8) -> Option<Self> {
        Some(match tag {
            0 => KeyFamily::Term,
            1 => KeyFamily::Rewrite,
            2 => KeyFamily::TermPosition,
            3 => KeyFamily::RewritePosition,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_family() {
        assert_eq!(FeatureKey::term("cheap").family(), KeyFamily::Term);
        assert_eq!(FeatureKey::rewrite("a", "b").family(), KeyFamily::Rewrite);
        assert_eq!(
            FeatureKey::term_position(1, 4).family(),
            KeyFamily::TermPosition
        );
        let rp = FeatureKey::rewrite_position(SnippetPos::new(1, 0), SnippetPos::new(1, 5));
        assert_eq!(rp.family(), KeyFamily::RewritePosition);
    }

    #[test]
    fn keys_are_value_equal() {
        assert_eq!(FeatureKey::term("x"), FeatureKey::term("x"));
        assert_ne!(FeatureKey::term("x"), FeatureKey::term("y"));
        assert_ne!(FeatureKey::rewrite("a", "b"), FeatureKey::rewrite("b", "a"));
        assert_ne!(
            FeatureKey::term_position(0, 1),
            FeatureKey::term_position(1, 0),
        );
    }

    #[test]
    fn family_tags_round_trip() {
        for fam in [
            KeyFamily::Term,
            KeyFamily::Rewrite,
            KeyFamily::TermPosition,
            KeyFamily::RewritePosition,
        ] {
            assert_eq!(KeyFamily::from_tag(fam.tag()), Some(fam));
        }
        assert_eq!(KeyFamily::from_tag(9), None);
    }
}
