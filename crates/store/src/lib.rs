//! The feature statistics database (paper §V-C).
//!
//! Phase 1 of the snippet-classification pipeline (Figure 1) scans the ad
//! corpus and, for every feature — term n-gram, phrase rewrite, term
//! position, rewrite position pair — counts how often the feature's presence
//! coincided with a serve-weight increase (`delta-sw = +1`) versus decrease
//! (`delta-sw = -1`). The Laplace-smoothed probability `p` of `+1` and its
//! odds ratio `p / (1 - p)` are "the statistic corresponding to that feature
//! in the statistics database", later used to initialize classifier weights.
//!
//! This crate is that database, built like a real storage component:
//!
//! * [`key`] — the typed key space ([`FeatureKey`]).
//! * [`stats`] — up/down counters and smoothed estimators ([`FeatureStat`]).
//! * [`db`] — the in-memory store ([`StatsDb`]) plus a sharded concurrent
//!   builder ([`ShardedBuilder`]) for parallel corpus scans.
//! * [`codec`] — varint + length-prefixed binary encoding of keys/records.
//! * [`crc`] — CRC-32 (IEEE) for snapshot integrity.
//! * [`mod@file`] — versioned, checksummed snapshot serialization.
//! * [`slot`] — crash-safe generation slots: atomic writes, a manifest
//!   pointer, and a recovery loader that rolls back past torn or corrupt
//!   generations.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod crc;
pub mod db;
pub mod file;
pub mod key;
pub mod slot;
pub mod stats;

pub use db::{ShardedBuilder, StatsDb};
pub use file::{merge_snapshots, read_snapshot, write_snapshot, SnapshotError};
pub use key::FeatureKey;
pub use slot::{write_atomic, ArtifactSlot, SlotError, SlotLoad};
pub use stats::FeatureStat;
