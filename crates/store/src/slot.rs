//! Crash-safe artifact slots.
//!
//! A *slot* is a directory-resident, generation-numbered home for one
//! serialized artifact (a stats snapshot, a deployed model). Writes are
//! torn-write-proof and readers always land on a consistent generation:
//!
//! ```text
//! dir/
//!   name.gen-1          full artifact bytes, generation 1
//!   name.gen-2          full artifact bytes, generation 2 (current)
//!   name.manifest       tiny pointer record: magic, version, gen, CRC
//! ```
//!
//! Every file — generation payloads and the manifest alike — is written via
//! [`write_atomic`]: bytes go to a `.tmp` sibling, are fsynced, renamed over
//! the final path, and the directory is fsynced so the rename itself
//! survives power loss. A crash at any byte therefore leaves either the old
//! file or the new file, never a prefix of the new one.
//!
//! Recovery ([`ArtifactSlot::load_with`]) belts-and-suspenders that
//! guarantee: it validates the manifest's generation with the caller's
//! decoder (which checks the artifact's own CRC trailer), and on *any*
//! failure — torn bytes slipped in by a non-atomic writer, a stray manifest,
//! bit rot — walks older generations newest-first until one decodes, so a
//! bad deploy rolls back to the last good artifact instead of taking
//! serving down.

use std::io::Write;
use std::path::{Path, PathBuf};

use bytes::BytesMut;

use crate::codec;
use crate::crc::crc32;

const MANIFEST_MAGIC: &[u8; 8] = b"MBMANIF\0";
const MANIFEST_VERSION: u32 = 1;

/// Errors from slot IO and recovery.
#[derive(Debug)]
pub enum SlotError {
    /// Underlying filesystem error.
    Io(std::io::Error),
    /// No generation in the slot passed validation.
    NoGoodGeneration {
        /// Slot directory that was searched.
        dir: PathBuf,
        /// Artifact name within the slot.
        name: String,
        /// Number of generations that were tried (0 = slot is empty).
        tried: usize,
        /// Rendering of the newest generation's validation failure, if any.
        last_error: Option<String>,
    },
}

impl std::fmt::Display for SlotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SlotError::Io(e) => write!(f, "slot io error: {e}"),
            SlotError::NoGoodGeneration {
                dir,
                name,
                tried,
                last_error,
            } => {
                write!(
                    f,
                    "no good generation of {name:?} in {} ({tried} tried",
                    dir.display()
                )?;
                if let Some(e) = last_error {
                    write!(f, "; newest failed: {e}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl std::error::Error for SlotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SlotError::Io(e) => Some(e),
            SlotError::NoGoodGeneration { .. } => None,
        }
    }
}

impl From<std::io::Error> for SlotError {
    fn from(e: std::io::Error) -> Self {
        SlotError::Io(e)
    }
}

/// Write `bytes` to `path` crash-safely: temp file in the same directory,
/// `fsync`, atomic rename over `path`, then `fsync` of the directory so the
/// rename is durable. A crash at any point leaves either the previous file
/// or the complete new one — never a torn prefix.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), std::io::Error> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Some(dir) = dir {
        // Directory fsync makes the rename itself durable. Failure here is
        // reported: the data is safe but its visibility after power loss
        // is not guaranteed.
        std::fs::File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// The result of a successful slot load.
#[derive(Debug)]
pub struct SlotLoad<T> {
    /// The decoded artifact.
    pub value: T,
    /// Generation number the artifact was read from.
    pub generation: u64,
    /// True when a newer generation existed but failed validation, i.e.
    /// the loader rolled back past a torn or corrupt write.
    pub rolled_back: bool,
}

/// A generation-numbered, crash-safe home for one artifact.
#[derive(Debug, Clone)]
pub struct ArtifactSlot {
    dir: PathBuf,
    name: String,
}

impl ArtifactSlot {
    /// A slot for artifact `name` inside `dir` (created on first commit).
    pub fn new(dir: impl Into<PathBuf>, name: impl Into<String>) -> Self {
        Self {
            dir: dir.into(),
            name: name.into(),
        }
    }

    /// The slot directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of generation `gen`'s payload file.
    pub fn generation_path(&self, gen: u64) -> PathBuf {
        self.dir.join(format!("{}.gen-{gen}", self.name))
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(format!("{}.manifest", self.name))
    }

    /// All generation numbers present on disk, ascending.
    pub fn generations(&self) -> Result<Vec<u64>, std::io::Error> {
        let mut gens = Vec::new();
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(e) => e,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(gens),
            Err(e) => return Err(e),
        };
        let prefix = format!("{}.gen-", self.name);
        for entry in entries {
            let entry = entry?;
            if let Some(rest) = entry
                .file_name()
                .to_str()
                .and_then(|n| n.strip_prefix(&prefix))
            {
                // Ignore anything that is not a pure generation number —
                // in particular `.tmp` leftovers from a crashed writer.
                if let Ok(g) = rest.parse::<u64>() {
                    gens.push(g);
                }
            }
        }
        gens.sort_unstable();
        Ok(gens)
    }

    /// Generation the manifest points at, if the manifest is present and
    /// intact (it carries its own CRC; a torn manifest reads as `None` and
    /// recovery falls back to scanning generation files).
    pub fn manifest_generation(&self) -> Option<u64> {
        let bytes = std::fs::read(self.manifest_path()).ok()?;
        decode_manifest(&bytes)
    }

    /// Commit `bytes` as the next generation: write the payload atomically,
    /// then atomically repoint the manifest. Returns the new generation
    /// number. A crash between the two steps leaves the manifest on the
    /// previous generation, which is exactly what readers then serve.
    pub fn commit(&self, bytes: &[u8]) -> Result<u64, SlotError> {
        std::fs::create_dir_all(&self.dir)?;
        let next = self
            .generations()?
            .last()
            .copied()
            .unwrap_or(0)
            .saturating_add(1);
        write_atomic(&self.generation_path(next), bytes)?;
        write_atomic(&self.manifest_path(), &encode_manifest(next))?;
        Ok(next)
    }

    /// Load the newest generation that passes `validate`, rolling back past
    /// corrupt or torn generations. The manifest generation is tried first;
    /// any generation files newer than it (a crash after payload write but
    /// before manifest repoint) are tried even earlier, newest first.
    pub fn load_with<T, E, F>(&self, validate: F) -> Result<SlotLoad<T>, SlotError>
    where
        E: std::fmt::Display,
        F: Fn(&[u8]) -> Result<T, E>,
    {
        let mut candidates = self.generations()?;
        candidates.reverse(); // newest first
        let mut tried = 0usize;
        let mut last_error: Option<String> = None;
        let newest = candidates.first().copied();
        for gen in candidates {
            tried += 1;
            let bytes = match std::fs::read(self.generation_path(gen)) {
                Ok(b) => b,
                Err(e) => {
                    last_error.get_or_insert_with(|| e.to_string());
                    continue;
                }
            };
            match validate(&bytes) {
                Ok(value) => {
                    return Ok(SlotLoad {
                        value,
                        generation: gen,
                        rolled_back: newest != Some(gen),
                    });
                }
                Err(e) => {
                    last_error.get_or_insert_with(|| e.to_string());
                }
            }
        }
        Err(SlotError::NoGoodGeneration {
            dir: self.dir.clone(),
            name: self.name.clone(),
            tried,
            last_error,
        })
    }

    /// Delete all but the newest `keep` generations (the manifest is left
    /// alone; it never points at a deleted generation because deletion is
    /// oldest-first). Returns how many files were removed.
    pub fn prune(&self, keep: usize) -> Result<usize, SlotError> {
        let gens = self.generations()?;
        let mut removed = 0;
        if gens.len() > keep {
            for &gen in &gens[..gens.len() - keep] {
                std::fs::remove_file(self.generation_path(gen))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

fn encode_manifest(gen: u64) -> Vec<u8> {
    let mut payload = BytesMut::new();
    codec::put_varint(&mut payload, gen);
    let mut out = Vec::with_capacity(MANIFEST_MAGIC.len() + 4 + payload.len() + 4);
    out.extend_from_slice(MANIFEST_MAGIC);
    out.extend_from_slice(&MANIFEST_VERSION.to_le_bytes());
    let checksum = crc32(&payload);
    out.extend_from_slice(&payload);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

fn decode_manifest(bytes: &[u8]) -> Option<u64> {
    let header = MANIFEST_MAGIC.len() + 4;
    if bytes.len() < header + 4 || &bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
        return None;
    }
    let mut vb = [0u8; 4];
    vb.copy_from_slice(&bytes[MANIFEST_MAGIC.len()..header]);
    if u32::from_le_bytes(vb) != MANIFEST_VERSION {
        return None;
    }
    let payload = &bytes[header..bytes.len() - 4];
    let mut tb = [0u8; 4];
    tb.copy_from_slice(&bytes[bytes.len() - 4..]);
    if crc32(payload) != u32::from_le_bytes(tb) {
        return None;
    }
    let mut buf = payload;
    codec::get_varint(&mut buf).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("mbslot-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn ok_if_ascii(bytes: &[u8]) -> Result<String, String> {
        if bytes.is_empty() || !bytes.is_ascii() {
            return Err("not ascii".into());
        }
        String::from_utf8(bytes.to_vec()).map_err(|e| e.to_string())
    }

    #[test]
    fn commit_and_load_round_trip() {
        let dir = tmp_dir("roundtrip");
        let slot = ArtifactSlot::new(&dir, "model.mbm");
        assert_eq!(slot.commit(b"alpha").unwrap(), 1);
        assert_eq!(slot.commit(b"beta").unwrap(), 2);
        let load = slot.load_with(ok_if_ascii).unwrap();
        assert_eq!(load.value, "beta");
        assert_eq!(load.generation, 2);
        assert!(!load.rolled_back);
        assert_eq!(slot.manifest_generation(), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_rolls_back() {
        let dir = tmp_dir("rollback");
        let slot = ArtifactSlot::new(&dir, "model.mbm");
        slot.commit(b"good").unwrap();
        slot.commit(b"also good").unwrap();
        // Simulate a torn write from a non-atomic writer: generation 3
        // exists but fails validation.
        std::fs::write(slot.generation_path(3), [0xFF, 0x00]).unwrap();
        let load = slot.load_with(ok_if_ascii).unwrap();
        assert_eq!(load.value, "also good");
        assert_eq!(load.generation, 2);
        assert!(load.rolled_back);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_slot_is_typed_error() {
        let dir = tmp_dir("empty");
        let slot = ArtifactSlot::new(&dir, "model.mbm");
        match slot.load_with(ok_if_ascii) {
            Err(SlotError::NoGoodGeneration { tried: 0, .. }) => {}
            other => panic!("expected NoGoodGeneration, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn all_generations_corrupt_reports_newest_error() {
        let dir = tmp_dir("allbad");
        let slot = ArtifactSlot::new(&dir, "m");
        slot.commit(&[0xFF]).unwrap();
        slot.commit(&[0xFE]).unwrap();
        match slot.load_with(ok_if_ascii) {
            Err(SlotError::NoGoodGeneration {
                tried: 2,
                last_error: Some(e),
                ..
            }) => assert!(e.contains("not ascii")),
            other => panic!("expected NoGoodGeneration, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stray_tmp_files_are_ignored() {
        let dir = tmp_dir("straytmp");
        let slot = ArtifactSlot::new(&dir, "model.mbm");
        slot.commit(b"good").unwrap();
        // Crash before rename: a .tmp sibling is left behind.
        std::fs::write(dir.join("model.mbm.gen-2.tmp"), b"torn").unwrap();
        std::fs::write(dir.join("model.mbm.gen-x"), b"junk").unwrap();
        assert_eq!(slot.generations().unwrap(), vec![1]);
        let load = slot.load_with(ok_if_ascii).unwrap();
        assert_eq!(load.value, "good");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_manifest_still_loads_newest() {
        let dir = tmp_dir("tornmanifest");
        let slot = ArtifactSlot::new(&dir, "s");
        slot.commit(b"one").unwrap();
        slot.commit(b"two").unwrap();
        std::fs::write(dir.join("s.manifest"), b"garbage").unwrap();
        assert_eq!(slot.manifest_generation(), None);
        let load = slot.load_with(ok_if_ascii).unwrap();
        assert_eq!(load.value, "two");
        assert_eq!(load.generation, 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = tmp_dir("prune");
        let slot = ArtifactSlot::new(&dir, "m");
        for i in 0..5 {
            slot.commit(format!("v{i}").as_bytes()).unwrap();
        }
        assert_eq!(slot.prune(2).unwrap(), 3);
        assert_eq!(slot.generations().unwrap(), vec![4, 5]);
        let load = slot.load_with(ok_if_ascii).unwrap();
        assert_eq!(load.value, "v4");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn write_atomic_replaces_whole_file() {
        let dir = tmp_dir("atomic");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("f.bin");
        write_atomic(&path, b"first version, long").unwrap();
        write_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        assert!(!dir.join("f.bin.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_round_trip() {
        for gen in [0u64, 1, 127, 128, u64::MAX] {
            assert_eq!(decode_manifest(&encode_manifest(gen)), Some(gen));
        }
        assert_eq!(decode_manifest(b""), None);
        assert_eq!(decode_manifest(b"MBMANIF\0junkjunk"), None);
        let mut bytes = encode_manifest(7);
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        assert_eq!(decode_manifest(&bytes), None);
    }
}
