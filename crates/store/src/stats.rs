//! Per-feature statistics.
//!
//! For each feature, §V-C computes "the empirical probability p of sw-diff
//! being +1 … (using Laplace-smoothing to address sparsity)" and records
//! "the odds-ratio of this probability (p / (1-p))". We keep the raw up/down
//! counts so the smoothing parameter can be chosen (and ablated) at read
//! time rather than baked in at build time.

use serde::{Deserialize, Serialize};

/// Up/down counts of `delta-sw` for one feature.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureStat {
    /// Observations where sw-diff was positive (`delta-sw = +1`).
    pub up: u64,
    /// Observations where sw-diff was negative (`delta-sw = -1`).
    pub down: u64,
}

impl FeatureStat {
    /// A single observation.
    pub fn observation(positive: bool) -> Self {
        if positive {
            Self { up: 1, down: 0 }
        } else {
            Self { up: 0, down: 1 }
        }
    }

    /// Record one observation in place.
    pub fn record(&mut self, positive: bool) {
        if positive {
            self.up += 1;
        } else {
            self.down += 1;
        }
    }

    /// Merge counts (shard/snapshot merge).
    pub fn merge(&mut self, other: &FeatureStat) {
        self.up += other.up;
        self.down += other.down;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.up + self.down
    }

    /// Laplace-smoothed probability of `delta-sw = +1`:
    /// `(up + alpha) / (up + down + 2*alpha)`.
    ///
    /// `alpha` must be positive; with `alpha > 0` the result is always in
    /// the open interval (0, 1), so the odds ratio below is finite.
    pub fn probability(&self, alpha: f64) -> f64 {
        debug_assert!(alpha > 0.0, "Laplace alpha must be positive");
        (self.up as f64 + alpha) / (self.total() as f64 + 2.0 * alpha)
    }

    /// The paper's stored statistic: the odds ratio `p / (1 - p)`.
    pub fn odds(&self, alpha: f64) -> f64 {
        let p = self.probability(alpha);
        p / (1.0 - p)
    }

    /// Log odds-ratio — the natural initialization for logistic-regression
    /// weights (a feature with no evidence gets exactly 0).
    pub fn log_odds(&self, alpha: f64) -> f64 {
        self.odds(alpha).ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut s = FeatureStat::default();
        s.record(true);
        s.record(true);
        s.record(false);
        assert_eq!(s, FeatureStat { up: 2, down: 1 });
        let mut t = FeatureStat::observation(false);
        t.merge(&s);
        assert_eq!(t, FeatureStat { up: 2, down: 2 });
        assert_eq!(t.total(), 4);
    }

    #[test]
    fn laplace_probability() {
        let s = FeatureStat { up: 3, down: 1 };
        // (3 + 1) / (4 + 2) = 2/3
        assert!((s.probability(1.0) - 2.0 / 3.0).abs() < 1e-12);
        // Stronger smoothing pulls toward 1/2.
        assert!((s.probability(100.0) - 0.5).abs() < 0.02);
    }

    #[test]
    fn empty_stat_is_uninformative() {
        let s = FeatureStat::default();
        assert_eq!(s.probability(1.0), 0.5);
        assert_eq!(s.odds(1.0), 1.0);
        assert_eq!(s.log_odds(1.0), 0.0);
    }

    #[test]
    fn odds_sign_matches_evidence() {
        let up = FeatureStat { up: 10, down: 2 };
        let down = FeatureStat { up: 2, down: 10 };
        assert!(up.log_odds(1.0) > 0.0);
        assert!(down.log_odds(1.0) < 0.0);
        // Symmetric counts give symmetric log-odds.
        assert!((up.log_odds(1.0) + down.log_odds(1.0)).abs() < 1e-12);
    }

    #[test]
    fn extreme_counts_stay_finite() {
        let s = FeatureStat {
            up: u32::MAX as u64,
            down: 0,
        };
        assert!(s.log_odds(1.0).is_finite());
        assert!(s.probability(1.0) < 1.0);
    }
}
