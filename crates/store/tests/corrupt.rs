//! Hand-corrupted snapshot fixtures: one test per [`SnapshotError`] /
//! [`DecodeError`] variant, each asserting the *exact* variant. The
//! fixtures with valid CRC trailers matter most — they prove the decoder's
//! own structural checks fire even when the checksum cannot help.

use microbrowse_store::codec::DecodeError;
use microbrowse_store::crc::crc32;
use microbrowse_store::file::{from_bytes, to_bytes};
use microbrowse_store::{read_snapshot, FeatureKey, SnapshotError, StatsDb};

const MAGIC: &[u8; 8] = b"MBSTATS\0";
const VERSION: u32 = 1;

/// Frame an arbitrary payload as a snapshot whose CRC trailer is *valid*:
/// the corruption under test lives inside the payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

fn sample() -> StatsDb {
    let mut db = StatsDb::new();
    db.record(FeatureKey::term("cheap"), true);
    db.record(FeatureKey::rewrite("find cheap", "save 20%"), false);
    db
}

#[test]
fn io_error_variant() {
    match read_snapshot(std::path::Path::new("/nonexistent/stats.mbs")) {
        Err(SnapshotError::Io(e)) => assert_eq!(e.kind(), std::io::ErrorKind::NotFound),
        other => panic!("expected Io(NotFound), got {other:?}"),
    }
}

#[test]
fn bad_magic_variant() {
    let mut bytes = to_bytes(&sample());
    bytes[..8].copy_from_slice(b"NOTSTATS");
    assert!(matches!(from_bytes(&bytes), Err(SnapshotError::BadMagic)));
}

#[test]
fn unsupported_version_variant() {
    let mut bytes = to_bytes(&sample());
    bytes[8..12].copy_from_slice(&7u32.to_le_bytes());
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::UnsupportedVersion(7))
    ));
}

#[test]
fn checksum_mismatch_variant_reports_both_crcs() {
    let mut bytes = to_bytes(&sample());
    let mid = 12 + (bytes.len() - 16) / 2; // inside the payload
    bytes[mid] ^= 0x01;
    match from_bytes(&bytes) {
        Err(SnapshotError::ChecksumMismatch { expected, actual }) => {
            assert_ne!(expected, actual);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn truncated_variant_when_count_overstates() {
    // Count claims 3 records, payload contains none; CRC is valid, so the
    // decoder's own bookkeeping must catch it.
    let bytes = frame(&[3]);
    assert!(matches!(from_bytes(&bytes), Err(SnapshotError::Truncated)));
}

#[test]
fn truncated_variant_when_file_below_minimum() {
    // Shorter than magic + version + trailer: rejected before any parsing.
    assert!(matches!(
        from_bytes(b"MBSTATS\0"),
        Err(SnapshotError::Truncated)
    ));
    assert!(matches!(from_bytes(&[]), Err(SnapshotError::Truncated)));
}

#[test]
fn decode_unknown_tag_variant() {
    // One record whose key family tag is 42 (valid tags are 0–3).
    let bytes = frame(&[1, 42]);
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::Decode(DecodeError::UnknownTag(42)))
    ));
}

#[test]
fn decode_truncated_varint_variant() {
    // Record count varint has its continuation bit set and then the
    // payload ends: UnexpectedEof from inside the varint reader.
    let bytes = frame(&[0x80]);
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::Decode(DecodeError::UnexpectedEof))
    ));
}

#[test]
fn decode_varint_overflow_variant() {
    // An 11-byte all-continuation varint is not a valid LEB128 u64.
    let mut payload = vec![1u8, 0]; // one record, Term tag
    payload.extend_from_slice(&[0x80; 11]); // phrase length varint overflows
    let bytes = frame(&payload);
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::Decode(DecodeError::VarintOverflow))
    ));
}

#[test]
fn decode_invalid_utf8_variant() {
    // Term record whose 2-byte phrase is not UTF-8.
    let bytes = frame(&[1, 0, 2, 0xFF, 0xFE]);
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::Decode(DecodeError::InvalidUtf8))
    ));
}

#[test]
fn decode_string_body_truncated_variant() {
    // Phrase length says 10 bytes but only 2 follow (CRC still valid).
    let bytes = frame(&[1, 0, 10, b'a', b'b']);
    assert!(matches!(
        from_bytes(&bytes),
        Err(SnapshotError::Decode(DecodeError::UnexpectedEof))
    ));
}

/// The error messages an operator actually reads: each variant renders
/// with the discriminating detail in it.
#[test]
fn error_rendering_names_the_problem() {
    let cases: Vec<(SnapshotError, &str)> = vec![
        (SnapshotError::BadMagic, "magic"),
        (SnapshotError::UnsupportedVersion(9), "version 9"),
        (
            SnapshotError::ChecksumMismatch {
                expected: 1,
                actual: 2,
            },
            "crc",
        ),
        (SnapshotError::Truncated, "truncated"),
        (SnapshotError::Decode(DecodeError::UnknownTag(42)), "tag 42"),
    ];
    for (err, needle) in cases {
        let msg = err.to_string();
        assert!(msg.contains(needle), "{msg:?} lacks {needle:?}");
    }
}
