//! Property-based tests for the statistics store.

use microbrowse_store::file::{from_bytes, to_bytes};
use microbrowse_store::key::SnippetPos;
use microbrowse_store::{FeatureKey, FeatureStat, StatsDb};
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = FeatureKey> {
    prop_oneof![
        "[a-z0-9 %$]{0,24}".prop_map(FeatureKey::term),
        ("[a-z ]{0,16}", "[a-z ]{0,16}").prop_map(|(a, b)| FeatureKey::rewrite(a, b)),
        (0u8..8, 0u16..40).prop_map(|(l, p)| FeatureKey::term_position(l, p)),
        (0u8..8, 0u16..40, 0u8..8, 0u16..40).prop_map(|(l1, p1, l2, p2)| {
            FeatureKey::rewrite_position(SnippetPos::new(l1, p1), SnippetPos::new(l2, p2))
        }),
    ]
}

fn arb_stat() -> impl Strategy<Value = FeatureStat> {
    (0u64..1_000_000, 0u64..1_000_000).prop_map(|(up, down)| FeatureStat { up, down })
}

proptest! {
    /// Snapshot encode/decode is lossless for arbitrary databases.
    #[test]
    fn snapshot_round_trip(records in prop::collection::vec((arb_key(), arb_stat()), 0..60)) {
        let db = StatsDb::from_records(records);
        let back = from_bytes(&to_bytes(&db)).expect("round trip");
        prop_assert_eq!(db.sorted_records(), back.sorted_records());
    }

    /// Any single-byte corruption of the payload (or trailer) is detected.
    #[test]
    fn corruption_always_detected(
        records in prop::collection::vec((arb_key(), arb_stat()), 1..20),
        flip_bit in 0u8..8,
        pos_frac in 0.0f64..1.0,
    ) {
        let db = StatsDb::from_records(records);
        let mut bytes = to_bytes(&db);
        // Corrupt somewhere after the 12-byte header.
        let lo = 12usize;
        let hi = bytes.len();
        let idx = lo + ((pos_frac * (hi - lo) as f64) as usize).min(hi - lo - 1);
        bytes[idx] ^= 1 << flip_bit;
        // Either decoding fails, or (never observed, but the only acceptable
        // alternative) the decoded content differs from the original.
        match from_bytes(&bytes) {
            Err(_) => {}
            Ok(decoded) => {
                prop_assert_ne!(decoded.sorted_records(), db.sorted_records(),
                    "silent corruption at byte {} bit {}", idx, flip_bit);
            }
        }
    }

    /// probability() stays in (0, 1) and log_odds is finite for any counts.
    #[test]
    fn stats_estimators_bounded(stat in arb_stat(), alpha in 0.01f64..50.0) {
        let p = stat.probability(alpha);
        prop_assert!(p > 0.0 && p < 1.0);
        prop_assert!(stat.log_odds(alpha).is_finite());
        // Monotone in evidence: adding an up-observation never lowers p.
        let mut more = stat;
        more.record(true);
        prop_assert!(more.probability(alpha) >= p);
    }

    /// Merging databases is observation-preserving and commutative.
    #[test]
    fn merge_commutes(
        a in prop::collection::vec((arb_key(), arb_stat()), 0..20),
        b in prop::collection::vec((arb_key(), arb_stat()), 0..20),
    ) {
        let (da, db_) = (StatsDb::from_records(a.clone()), StatsDb::from_records(b.clone()));
        let mut ab = da.clone();
        ab.merge(db_.clone());
        let mut ba = db_;
        ba.merge(da);
        prop_assert_eq!(ab.sorted_records(), ba.sorted_records());
        let total: u64 = a.iter().chain(b.iter()).map(|(_, s)| s.up + s.down).sum();
        prop_assert_eq!(ab.total_observations(), total);
    }
}
