//! Lexicon drift: the ground-truth user changes its mind over time.
//!
//! Online learning only matters if the world moves. This module produces
//! *drifted* salience tables for [`crate::generator::generate_with_salience`]:
//! at `phase = 0.0` the tables equal the built-in ones, and as `phase`
//! grows toward `1.0` each pool's preference ordering rotates — the phrase
//! that used to win hands its salience to its neighbour ("free shipping"
//! stops selling, "2-day delivery" starts). Rotation of a centered vector
//! keeps every pool zero-sum, so drift changes *which* phrases win without
//! inventing a global CTR trend that would confound the evaluation.
//!
//! A frozen model trained at phase 0 degrades as phase grows; a model that
//! keeps folding click feedback tracks the rotation. `bench_online` gates
//! on exactly that gap.

use microbrowse_text::hash::FxHashMap;

use crate::generator::domain_salience;
use crate::lexicon::{Domain, DOMAINS};

/// The built-in salience tables of every domain, rotated by `phase`.
///
/// `phase` is clamped to `[0, 1]`. At `0.0` this is identical to
/// [`crate::generator::all_domain_salience`]; at `1.0` every pool's
/// centered salience vector has rotated one full slot.
pub fn drifted_salience(phase: f64) -> FxHashMap<String, FxHashMap<String, f64>> {
    DOMAINS
        .iter()
        .map(|d| (d.name.to_string(), drifted_domain_salience(d, phase)))
        .collect()
}

/// One domain's salience table, rotated by `phase`.
///
/// Per pool: center the option saliences (as [`domain_salience`] does),
/// then linearly interpolate each option toward its successor's centered
/// value: `new[i] = (1 - phase) * cent[i] + phase * cent[(i + 1) % n]`.
/// Rotation is a permutation and interpolation is linear, so every
/// intermediate table stays zero-sum per pool.
pub fn drifted_domain_salience(domain: &Domain, phase: f64) -> FxHashMap<String, f64> {
    let phase = phase.clamp(0.0, 1.0);
    if phase == 0.0 {
        return domain_salience(domain);
    }
    let mut map = FxHashMap::default();
    for pool in domain.pools {
        let n = pool.options.len().max(1);
        let mean: f64 = pool.options.iter().map(|o| o.salience).sum::<f64>() / n as f64;
        let cent: Vec<f64> = pool.options.iter().map(|o| o.salience - mean).collect();
        for (i, opt) in pool.options.iter().enumerate() {
            let rotated = (1.0 - phase) * cent[i] + phase * cent[(i + 1) % n];
            map.insert(opt.text.to_string(), rotated);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{all_domain_salience, generate, generate_with_salience};
    use crate::GeneratorConfig;

    #[test]
    fn phase_zero_is_identity() {
        let drifted = drifted_salience(0.0);
        let builtin = all_domain_salience();
        assert_eq!(drifted.len(), builtin.len());
        for (name, table) in &builtin {
            let d = &drifted[name];
            assert_eq!(d.len(), table.len());
            for (phrase, &s) in table {
                assert!(
                    (d[phrase] - s).abs() < 1e-12,
                    "{name}/{phrase}: {} vs {s}",
                    d[phrase]
                );
            }
        }
    }

    #[test]
    fn pools_stay_zero_sum_at_every_phase() {
        for &phase in &[0.0, 0.25, 0.5, 0.75, 1.0] {
            for domain in DOMAINS {
                let table = drifted_domain_salience(domain, phase);
                for pool in domain.pools {
                    let sum: f64 = pool.options.iter().map(|o| table[o.text]).sum();
                    assert!(
                        sum.abs() < 1e-9,
                        "pool {} of {} drifted off zero-sum at phase {phase}: {sum}",
                        pool.name,
                        domain.name
                    );
                }
            }
        }
    }

    #[test]
    fn full_rotation_moves_salience_to_the_neighbour() {
        let table = drifted_domain_salience(&DOMAINS[0], 1.0);
        let pool = DOMAINS[0]
            .pools
            .iter()
            .find(|p| p.options.len() >= 2)
            .expect("some multi-option pool");
        let n = pool.options.len();
        let mean: f64 = pool.options.iter().map(|o| o.salience).sum::<f64>() / n as f64;
        for (i, opt) in pool.options.iter().enumerate() {
            let successor = &pool.options[(i + 1) % n];
            assert!(
                (table[opt.text] - (successor.salience - mean)).abs() < 1e-12,
                "option {i} should carry its successor's centered salience"
            );
        }
    }

    #[test]
    fn drift_changes_click_counts_but_not_texts() {
        let cfg = GeneratorConfig {
            num_adgroups: 40,
            ctr_noise: 0.0,
            seed: 11,
            ..Default::default()
        };
        let before = generate(&cfg);
        let after = generate_with_salience(&cfg, drifted_salience(1.0));
        // Same seed, same structural draws: texts and impressions match...
        let flat = |sc: &crate::SynthCorpus| -> Vec<(String, u64)> {
            sc.corpus
                .adgroups
                .iter()
                .flat_map(|g| {
                    g.creatives
                        .iter()
                        .map(|c| (c.snippet.to_string(), c.impressions))
                })
                .collect()
        };
        assert_eq!(flat(&before), flat(&after), "drift must not touch texts");
        // ...but the clicking user disagrees about which creatives win.
        let clicks = |sc: &crate::SynthCorpus| -> Vec<u64> {
            sc.corpus
                .adgroups
                .iter()
                .flat_map(|g| g.creatives.iter().map(|c| c.clicks))
                .collect()
        };
        assert_ne!(
            clicks(&before),
            clicks(&after),
            "full rotation must change click outcomes"
        );
    }
}
