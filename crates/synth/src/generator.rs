//! The ADCORPUS generator.
//!
//! One adgroup = one keyword + one creative *family*: a base creative
//! rendered from a domain template, plus variants that rewrite one or two
//! slot phrases — exactly the "advertisers often provide multiple
//! alternative creative texts in a particular adgroup" setting of §V-A.
//! Impressions and clicks come from the ground-truth micro-browsing user:
//! each creative's exact expected CTR (optionally distorted by per-creative
//! idiosyncratic noise) drives a binomial click sample.
//!
//! Everything is deterministic given [`GeneratorConfig::seed`].

use microbrowse_core::{AdCorpus, AdGroup, AdGroupId, Creative, CreativeId, Placement};
use microbrowse_text::hash::FxHashMap;
use microbrowse_text::Snippet;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::lexicon::{decor_options, render_template, template_slots, Domain, DOMAINS};
use crate::placement::placement_profile;
use crate::user::{AttentionProfile, MicroUser};
use crate::util::binomial;

/// Configuration of a corpus generation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Number of adgroups to generate.
    pub num_adgroups: usize,
    /// Creatives per adgroup, inclusive range.
    pub creatives_per_adgroup: (usize, usize),
    /// Impressions per creative, inclusive range.
    pub impressions: (u64, u64),
    /// Placement of every adgroup in this corpus (generate twice for
    /// Table 4).
    pub placement: Placement,
    /// Slots rewritten per variant, inclusive range (the paper's key
    /// insight: "relatively few word variations within a snippet").
    pub rewrites_per_variant: (usize, usize),
    /// Baseline click logit of the user (−3 ⇒ ~4.7% base CTR).
    pub base_logit: f64,
    /// Standard deviation of per-creative log-CTR noise (idiosyncratic
    /// quality the text does not explain: landing page, brand, budget…).
    pub ctr_noise: f64,
    /// Probability that a variant re-renders with a *different template* of
    /// the same domain: identical phrases, different positions — the
    /// paper's "even where within a snippet particular words are located"
    /// effect. Such pairs are invisible to position-free features.
    pub template_switch_prob: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            num_adgroups: 1000,
            creatives_per_adgroup: (2, 5),
            impressions: (20_000, 60_000),
            placement: Placement::Top,
            rewrites_per_variant: (1, 2),
            base_logit: -3.0,
            ctr_noise: 0.20,
            template_switch_prob: 0.60,
            seed: 42,
        }
    }
}

/// What the generator knows and the learner has to rediscover.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Domain name → (phrase → salience). Salience is *query-dependent*:
    /// the same text can carry different salience in different verticals.
    pub salience_by_domain: FxHashMap<String, FxHashMap<String, f64>>,
    /// The attention curve used.
    pub attention: AttentionProfile,
    /// The user's baseline click logit.
    pub base_logit: f64,
}

impl GroundTruth {
    /// The oracle user for one domain.
    pub fn user_for(&self, domain: &str) -> MicroUser {
        MicroUser {
            attention: self.attention.clone(),
            salience: self
                .salience_by_domain
                .get(domain)
                .cloned()
                .unwrap_or_default(),
            base_logit: self.base_logit,
        }
    }
}

/// A generated corpus plus its ground truth.
#[derive(Debug, Clone)]
pub struct SynthCorpus {
    /// The corpus, schema-compatible with `microbrowse_core`.
    pub corpus: AdCorpus,
    /// The generating model (for oracle evaluations and tests).
    pub truth: GroundTruth,
}

/// The phrase → salience table of one domain.
///
/// Saliences are **centered per pool** (each pool's options sum to zero):
/// creative pairs only ever compare options of the same pool, so only
/// within-pool differences are identified by CTR data, and leaving a
/// nonzero pool mean would give every *template* an artificial average
/// advantage that leaks position information through its fixed filler
/// words.
pub fn domain_salience(domain: &Domain) -> FxHashMap<String, f64> {
    let mut map = FxHashMap::default();
    for pool in domain.pools {
        let mean: f64 =
            pool.options.iter().map(|o| o.salience).sum::<f64>() / pool.options.len().max(1) as f64;
        for opt in pool.options {
            map.insert(opt.text.to_string(), opt.salience - mean);
        }
    }
    map
}

/// Per-domain salience tables for every built-in domain.
pub fn all_domain_salience() -> FxHashMap<String, FxHashMap<String, f64>> {
    DOMAINS
        .iter()
        .map(|d| (d.name.to_string(), domain_salience(d)))
        .collect()
}

/// The domain owning `keyword`, if any (keywords are unique per domain).
pub fn domain_of_keyword(keyword: &str) -> Option<&'static Domain> {
    DOMAINS.iter().find(|d| d.keywords.contains(&keyword))
}

/// One slot assignment: pool name → option index.
type Assignment = FxHashMap<&'static str, usize>;

/// Pick a template different from `current` (assumes `options.len() > 1`).
fn pick_other<'a>(options: &[&'a str], current: &str, rng: &mut StdRng) -> &'a str {
    loop {
        let cand = options[rng.gen_range(0..options.len())];
        if cand != current {
            return cand;
        }
    }
}

/// Per-adgroup decor choices: decor pool name → chosen phrasing.
type DecorAssignment = FxHashMap<&'static str, String>;

fn render_creative(
    domain: &Domain,
    line1_t: &str,
    line2_t: &str,
    line3_t: &str,
    asg: &Assignment,
    decor_asg: &DecorAssignment,
) -> Snippet {
    let mut choose = |slot: &str| -> String {
        let pool = domain.pool(slot);
        if pool.decor {
            decor_asg[pool.name].clone()
        } else {
            pool.options[asg[pool.name]].text.to_string()
        }
    };
    let line1 = render_template(line1_t, &mut choose);
    let line2 = render_template(line2_t, &mut choose);
    let line3 = render_template(line3_t, &mut choose);
    Snippet::creative(line1, line2, line3)
}

/// Generate a corpus with the built-in (phase-zero) salience tables.
pub fn generate(cfg: &GeneratorConfig) -> SynthCorpus {
    generate_with_salience(cfg, all_domain_salience())
}

/// Generate a corpus whose clicking user runs on *custom* salience tables
/// (domain name → phrase → salience).
///
/// This is the seam the drift machinery uses: [`crate::drift`] interpolates
/// the built-in tables toward a rotated preference and feeds the result
/// here, so "the market changed its mind about which phrases sell" is a
/// pure data change — template text, adgroup structure, and all other RNG
/// draws stay identical for identical seeds.
pub fn generate_with_salience(
    cfg: &GeneratorConfig,
    salience_by_domain: FxHashMap<String, FxHashMap<String, f64>>,
) -> SynthCorpus {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let attention = placement_profile(cfg.placement);
    let users: FxHashMap<&str, MicroUser> = DOMAINS
        .iter()
        .map(|d| {
            (
                d.name,
                MicroUser {
                    attention: attention.clone(),
                    salience: salience_by_domain.get(d.name).cloned().unwrap_or_default(),
                    base_logit: cfg.base_logit,
                },
            )
        })
        .collect();

    // Procedurally expanded decor inventories, built once per domain pool.
    let decor_inventory: FxHashMap<(&str, &str), Vec<String>> = DOMAINS
        .iter()
        .flat_map(|d| {
            d.pools
                .iter()
                .filter(|p| p.decor)
                .map(move |p| ((d.name, p.name), decor_options(p)))
        })
        .collect();

    let mut adgroups = Vec::with_capacity(cfg.num_adgroups);
    let mut next_creative_id = 0u64;

    for gid in 0..cfg.num_adgroups {
        let domain = DOMAINS[rng.gen_range(0..DOMAINS.len())];
        let user = &users[domain.name];
        let keyword = domain.keywords[rng.gen_range(0..domain.keywords.len())];
        let line1_t = domain.line1[rng.gen_range(0..domain.line1.len())];
        let line2_t = domain.line2[rng.gen_range(0..domain.line2.len())];
        let line3_t = domain.line3[rng.gen_range(0..domain.line3.len())];

        // Slots actually present in this adgroup's templates. Decor slots
        // get a per-adgroup choice but are not rewritten between variants.
        let mut all_slots: Vec<&'static str> = Vec::new();
        for t in [line1_t, line2_t, line3_t] {
            for s in template_slots(t) {
                let pool_name = domain.pool(s).name;
                if !all_slots.contains(&pool_name) {
                    all_slots.push(pool_name);
                }
            }
        }
        let slots: Vec<&'static str> = all_slots
            .iter()
            .copied()
            .filter(|s| !domain.pool(s).decor)
            .collect();

        // Base assignment (non-decor) and per-adgroup decor phrasing.
        let mut base: Assignment = Assignment::default();
        let mut decor_asg: DecorAssignment = DecorAssignment::default();
        for &slot in &all_slots {
            let pool = domain.pool(slot);
            if pool.decor {
                let inv = &decor_inventory[&(domain.name, pool.name)];
                decor_asg.insert(pool.name, inv[rng.gen_range(0..inv.len())].clone());
            } else {
                base.insert(slot, rng.gen_range(0..pool.options.len()));
            }
        }

        let n_creatives = rng.gen_range(cfg.creatives_per_adgroup.0..=cfg.creatives_per_adgroup.1);
        // A variant = slot assignment + the templates it renders with.
        let mut variants: Vec<(Assignment, &str, &str, &str)> =
            vec![(base.clone(), line1_t, line2_t, line3_t)];
        let mut seen_texts: Vec<Snippet> = vec![render_creative(
            &domain, line1_t, line2_t, line3_t, &base, &decor_asg,
        )];
        let mut guard = 0;
        while variants.len() < n_creatives && guard < 100 {
            guard += 1;
            let mut variant = base.clone();
            let (mut v_l1, mut v_l2, mut v_l3) = (line1_t, line2_t, line3_t);

            // Sometimes the advertiser only restructures the creative:
            // identical phrases, different positions.
            let switch_template = rng.gen_bool(cfg.template_switch_prob);
            if switch_template {
                match rng.gen_range(0..4) {
                    0 if domain.line1.len() > 1 => v_l1 = pick_other(domain.line1, v_l1, &mut rng),
                    1 | 2 if domain.line2.len() > 1 => {
                        v_l2 = pick_other(domain.line2, v_l2, &mut rng)
                    }
                    _ if domain.line3.len() > 1 => v_l3 = pick_other(domain.line3, v_l3, &mut rng),
                    _ => {}
                }
                // Cover any slots the new templates introduce.
                for t in [v_l1, v_l2, v_l3] {
                    for s in template_slots(t) {
                        let pool = domain.pool(s);
                        if pool.decor {
                            if !decor_asg.contains_key(pool.name) {
                                let inv = &decor_inventory[&(domain.name, pool.name)];
                                decor_asg
                                    .insert(pool.name, inv[rng.gen_range(0..inv.len())].clone());
                            }
                        } else {
                            variant
                                .entry(pool.name)
                                .or_insert_with(|| rng.gen_range(0..pool.options.len()));
                        }
                    }
                }
            }

            // Rewrite 1–2 slot phrases (sometimes zero when the variant is a
            // pure restructuring).
            let k = if switch_template && rng.gen_bool(0.7) {
                0
            } else {
                rng.gen_range(cfg.rewrites_per_variant.0..=cfg.rewrites_per_variant.1)
                    .min(slots.len())
            };
            let mut chosen_slots = slots.clone();
            chosen_slots.shuffle(&mut rng);
            for &slot in chosen_slots.iter().take(k) {
                let pool = domain.pool(slot);
                if pool.options.len() < 2 {
                    continue;
                }
                let current = variant[slot];
                let mut alt = rng.gen_range(0..pool.options.len() - 1);
                if alt >= current {
                    alt += 1;
                }
                variant.insert(slot, alt);
            }

            let rendered = render_creative(&domain, v_l1, v_l2, v_l3, &variant, &decor_asg);
            if seen_texts.contains(&rendered) {
                continue;
            }
            seen_texts.push(rendered);
            variants.push((variant, v_l1, v_l2, v_l3));
        }

        let creatives: Vec<Creative> = variants
            .iter()
            .map(|(asg, v_l1, v_l2, v_l3)| {
                let snippet = render_creative(&domain, v_l1, v_l2, v_l3, asg, &decor_asg);
                let mut ctr = user.expected_ctr(&snippet);
                if cfg.ctr_noise > 0.0 {
                    let noise = crate::util::gaussian(&mut rng) * cfg.ctr_noise;
                    ctr = (ctr * noise.exp()).clamp(0.0, 0.95);
                }
                let impressions = rng.gen_range(cfg.impressions.0..=cfg.impressions.1);
                let clicks = binomial(impressions, ctr, &mut rng);
                let id = CreativeId(next_creative_id);
                next_creative_id += 1;
                Creative {
                    id,
                    snippet,
                    impressions,
                    clicks,
                }
            })
            .collect();

        adgroups.push(AdGroup {
            id: AdGroupId(gid as u64),
            keyword: keyword.to_string(),
            placement: cfg.placement,
            creatives,
        });
    }

    let mut corpus = AdCorpus { adgroups };
    corpus.retain_active();
    SynthCorpus {
        corpus,
        truth: GroundTruth {
            salience_by_domain,
            attention,
            base_logit: cfg.base_logit,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use microbrowse_core::PairFilter;

    fn small_cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            num_adgroups: 60,
            seed,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        let a = generate(&small_cfg(7));
        let b = generate(&small_cfg(7));
        assert_eq!(a.corpus.adgroups, b.corpus.adgroups);
        let c = generate(&small_cfg(8));
        assert_ne!(a.corpus.adgroups, c.corpus.adgroups);
    }

    #[test]
    fn corpus_shape() {
        let sc = generate(&small_cfg(1));
        assert!(
            sc.corpus.num_adgroups() >= 55,
            "most adgroups survive retain_active"
        );
        for g in &sc.corpus.adgroups {
            assert!(g.creatives.len() >= 2);
            assert!(g.total_clicks() >= 1);
            for c in &g.creatives {
                assert_eq!(c.snippet.num_lines(), 3);
                assert!(c.clicks <= c.impressions);
            }
            // All creatives in a group share the brand (taglines and line-1
            // templates may vary): some token appears in every line 1.
            let line1s: Vec<&str> = g
                .creatives
                .iter()
                .map(|c| c.snippet.lines()[0].text.as_str())
                .collect();
            let first: std::collections::HashSet<&str> = line1s[0].split_whitespace().collect();
            let shared = first.iter().any(|tok| {
                line1s
                    .iter()
                    .all(|l| l.split_whitespace().any(|t| t == *tok))
            });
            assert!(shared, "no shared brand token in {line1s:?}");
        }
    }

    #[test]
    fn variants_differ_in_few_tokens() {
        let sc = generate(&small_cfg(2));
        for g in sc.corpus.adgroups.iter().take(20) {
            let a = &g.creatives[0].snippet;
            let b = &g.creatives[1].snippet;
            assert_ne!(a, b, "variants must differ");
            // Variants share most of their vocabulary (rewrites touch a few
            // phrases; template switches reshuffle but reuse the same words).
            let toks = |s: &microbrowse_text::Snippet| -> std::collections::HashSet<String> {
                s.lines()
                    .iter()
                    .flat_map(|l| l.text.split_whitespace().map(str::to_string))
                    .collect()
            };
            let (ta, tb) = (toks(a), toks(b));
            let shared = ta.intersection(&tb).count();
            assert!(
                shared * 10 >= ta.len().min(tb.len()) * 3,
                "variants too dissimilar:\n{a}\n--\n{b}"
            );
        }
    }

    #[test]
    fn ctr_ordering_follows_ground_truth_salience() {
        // With noise off, the creative whose examined phrases are more
        // salient must have the higher true CTR; verify via the oracle.
        let cfg = GeneratorConfig {
            ctr_noise: 0.0,
            num_adgroups: 80,
            seed: 3,
            ..Default::default()
        };
        let sc = generate(&cfg);
        let mut checked = 0;
        for g in &sc.corpus.adgroups {
            let domain = domain_of_keyword(&g.keyword).expect("generated keyword has a domain");
            let user = sc.truth.user_for(domain.name);
            for pair in g.creatives.windows(2) {
                let e0 = user.expected_ctr(&pair[0].snippet);
                let e1 = user.expected_ctr(&pair[1].snippet);
                if (e0 - e1).abs() < 0.002 {
                    continue; // too close to call through binomial noise
                }
                // Large samples: empirical CTR ordering should usually agree.
                if (pair[0].ctr() > pair[1].ctr()) == (e0 > e1) {
                    checked += 1;
                }
            }
        }
        assert!(checked > 20, "ordering agreements: {checked}");
    }

    #[test]
    fn produces_trainable_pairs() {
        let sc = generate(&GeneratorConfig {
            num_adgroups: 200,
            seed: 4,
            ..Default::default()
        });
        let pairs = sc.corpus.extract_pairs(&PairFilter::default());
        assert!(
            pairs.len() >= 100,
            "expected a healthy number of significant pairs, got {}",
            pairs.len()
        );
        // Labels must not be degenerate.
        let pos = pairs.iter().filter(|p| p.r_better).count();
        assert!(
            pos > pairs.len() / 5 && pos < pairs.len() * 4 / 5,
            "{pos}/{}",
            pairs.len()
        );
    }

    #[test]
    fn placement_is_stamped() {
        let cfg = GeneratorConfig {
            placement: Placement::Rhs,
            num_adgroups: 10,
            ..Default::default()
        };
        let sc = generate(&cfg);
        assert!(sc
            .corpus
            .adgroups
            .iter()
            .all(|g| g.placement == Placement::Rhs));
    }

    #[test]
    fn rhs_corpus_has_lower_ctr_spread() {
        // Text matters less on RHS: the within-adgroup CTR ratio spread is
        // smaller than for Top given identical seeds.
        let top = generate(&GeneratorConfig {
            placement: Placement::Top,
            ctr_noise: 0.0,
            num_adgroups: 150,
            seed: 5,
            ..Default::default()
        });
        let rhs = generate(&GeneratorConfig {
            placement: Placement::Rhs,
            ctr_noise: 0.0,
            num_adgroups: 150,
            seed: 5,
            ..Default::default()
        });
        let spread = |corpus: &AdCorpus| -> f64 {
            let mut total = 0.0;
            let mut n = 0.0;
            for g in &corpus.adgroups {
                let mean = g.mean_ctr();
                if mean <= 0.0 {
                    continue;
                }
                for c in &g.creatives {
                    total += (c.ctr() / mean - 1.0).abs();
                    n += 1.0;
                }
            }
            total / n
        };
        let (st, sr) = (spread(&top.corpus), spread(&rhs.corpus));
        assert!(st > sr, "top spread {st} should exceed rhs spread {sr}");
    }

    #[test]
    fn domain_salience_tables_cover_all_domains() {
        let tables = all_domain_salience();
        assert!(tables["flights"].contains_key("find cheap"));
        assert!(tables["hotels"].contains_key("free cancellation"));
        assert!(tables["shoes"].contains_key("free shipping"));
        assert!(tables["insurance"].contains_key("get a free quote"));
        let total: usize = tables.values().map(FxHashMap::len).sum();
        assert!(total > 60);
    }

    #[test]
    fn query_dependent_salience_differs_across_domains() {
        let tables = all_domain_salience();
        let hotels = tables["hotels"]["compare prices"];
        let insurance = tables["insurance"]["compare prices"];
        assert!(
            hotels > 0.0 && insurance < 0.0,
            "hotels {hotels}, insurance {insurance}"
        );
    }

    #[test]
    fn keyword_domain_lookup() {
        assert_eq!(
            domain_of_keyword("cheap flights").map(|d| d.name),
            Some("flights")
        );
        assert!(domain_of_keyword("no such keyword").is_none());
    }
}
