//! Domain lexicons: the phrase inventory creatives are built from.
//!
//! Each [`Domain`] models one advertising vertical (flights, hotels, …) with
//! keywords, headline choices, and line templates containing *slots*. A slot
//! draws from a pool of interchangeable [`Phrase`]s — "find cheap" vs "get
//! discounts" vs "compare fares" — each carrying a **ground-truth salience**:
//! how strongly seeing that phrase pushes a user toward clicking. Positive
//! phrases are offers and trust markers; negative ones are the fine print
//! advertisers sometimes have to include. Salience is the hidden quantity
//! the micro-browsing classifier ultimately has to recover from CTR data.
//!
//! Three design decisions make the corpus behave like the paper's:
//!
//! * **Positional diversity.** Templates place the same pools at different
//!   line/token positions, so position and phrase effects are identifiable
//!   and Figure 3's curves have support everywhere.
//! * **Context sparsity.** Neutral *decor* slots ("today" / "right now" /
//!   "online") vary per adgroup. Within an adgroup they are constant — they
//!   cancel out of every pair — but across adgroups they multiply the
//!   contexts around each salient phrase, so position-blind n-gram features
//!   cannot cheaply read position off their surroundings.
//! * **Query-dependent salience.** Some phrase texts appear in several
//!   domains with *different* salience ("compare prices" attracts hotel
//!   shoppers, bores insurance shoppers). A position-independent term
//!   statistic pools those contexts and muddies; a rewrite statistic is
//!   keyed by the phrase *pair*, which rarely crosses domains — this is the
//!   mechanism behind the paper's finding that rewrite features beat bare
//!   term features.

use serde::{Deserialize, Serialize};

/// A candidate phrase for a slot, with its ground-truth salience.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Phrase {
    /// The surface text (already lowercase; the tokenizer normalizes
    /// anyway).
    pub text: &'static str,
    /// Ground-truth click-pull of the phrase when examined, *in this
    /// domain*; roughly in [−1.5, 1.5] logits.
    pub salience: f64,
}

const fn p(text: &'static str, salience: f64) -> Phrase {
    Phrase { text, salience }
}

/// A named pool of interchangeable phrases.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    /// Slot name referenced by templates as `{name}`.
    pub name: &'static str,
    /// The options an advertiser picks among.
    pub options: &'static [Phrase],
    /// Decor pools hold neutral phrasing chosen per adgroup and (almost)
    /// never rewritten between variants; they exist to diversify contexts.
    pub decor: bool,
}

const fn pool(name: &'static str, options: &'static [Phrase]) -> Pool {
    Pool {
        name,
        options,
        decor: false,
    }
}

const fn decor(name: &'static str, options: &'static [Phrase]) -> Pool {
    Pool {
        name,
        options,
        decor: true,
    }
}

/// One advertising vertical.
#[derive(Debug, Clone, Copy)]
pub struct Domain {
    /// Vertical name (reporting only).
    pub name: &'static str,
    /// Keywords adgroups in this domain target.
    pub keywords: &'static [&'static str],
    /// Line-1 (headline) templates; `{brand}` is decor, `{tagline}` is a
    /// salient slot, so headline edits carry signal at line-1 positions.
    pub line1: &'static [&'static str],
    /// Line-2 templates; `{slot}` markers draw from [`Domain::pools`].
    pub line2: &'static [&'static str],
    /// Line-3 templates.
    pub line3: &'static [&'static str],
    /// The slot pools.
    pub pools: &'static [Pool],
}

impl Domain {
    /// Find a pool by name (templates are validated in tests, so a miss is
    /// a programmer error).
    pub fn pool(&self, name: &str) -> &Pool {
        self.pools
            .iter()
            .find(|pool| pool.name == name)
            .unwrap_or_else(|| panic!("domain {} has no pool {name}", self.name))
    }
}

static WHEN: &[Phrase] = &[
    p("today", 0.0),
    p("right now", 0.0),
    p("online", 0.0),
    p("this week", 0.0),
    p("in seconds", 0.0),
    p("anytime", 0.0),
    p("tonight", 0.0),
    p("this season", 0.0),
    p("instantly", 0.0),
    p("every day", 0.0),
    p("on the go", 0.0),
    p("around the clock", 0.0),
];

static AUDIENCE: &[Phrase] = &[
    p("for travelers", 0.0),
    p("for families", 0.0),
    p("for everyone", 0.0),
    p("for members", 0.0),
    p("for you", 0.0),
    p("for regulars", 0.0),
    p("for new customers", 0.0),
    p("for planners", 0.0),
    p("for weekenders", 0.0),
    p("for commuters", 0.0),
];

static SHOPPERS: &[Phrase] = &[
    p("for runners", 0.0),
    p("for athletes", 0.0),
    p("for beginners", 0.0),
    p("for pros", 0.0),
    p("for everyday wear", 0.0),
    p("for trail days", 0.0),
    p("for race day", 0.0),
    p("for the gym", 0.0),
    p("for city streets", 0.0),
    p("for long miles", 0.0),
];

/// The built-in verticals.
pub static DOMAINS: &[Domain] = &[
    Domain {
        name: "flights",
        keywords: &[
            "cheap flights",
            "flights to new york",
            "airline tickets",
            "last minute flights",
            "direct flights",
            "international flights",
        ],
        line1: &["{brand}", "{brand} {tagline}", "{tagline} {brand}"],
        line2: &[
            "{when} {offer} {audience} flights to {city}",
            "fly to {city} {when} {offer}",
            "{offer} {when} on all {city} routes",
            "book {city} flights {audience} {offer} {when}",
            "{audience} {offer} {when} flying to {city}",
            "flights to {city} so {when} {offer}",
        ],
        line3: &[
            "{trust} {when} {perk}",
            "{perk} {audience} {trust}",
            "enjoy {when} {perk} {audience} {trust}",
            "{audience} {trust} {when} {perk}",
        ],
        pools: &[
            pool(
                "offer",
                &[
                    p("find cheap", 0.55),
                    p("get discounts", 0.95),
                    p("save 20%", 1.30),
                    p("compare fares", 0.15),
                    p("browse deals", 0.35),
                    p("view schedules", -0.25),
                    p("check availability", -0.45),
                    // Query-dependent: price comparison bores flight buyers
                    // (they expect fare search anyway) but attracts hotel
                    // shoppers — the same text lives in the hotels pool with
                    // positive salience.
                    p("compare prices", -0.30),
                ],
            ),
            pool(
                "city",
                &[
                    p("new york", 0.0),
                    p("london", 0.0),
                    p("tokyo", 0.0),
                    p("paris", 0.0),
                    p("rome", 0.0),
                    p("sydney", 0.0),
                ],
            ),
            pool(
                "perk",
                &[
                    p("more legroom", 0.85),
                    p("free checked bags", 1.05),
                    p("priority boarding", 0.45),
                    p("standard seating", -0.35),
                    p("basic fare rules", -0.75),
                    p("24 hour support", 0.20),
                ],
            ),
            pool(
                "trust",
                &[
                    p("no reservation costs", 0.90),
                    p("great rates", 0.50),
                    p("instant confirmation", 0.60),
                    p("fees may apply", -1.10),
                    p("restrictions apply", -0.95),
                    p("free cancellation", 0.35),
                    // "fees"/"booking" cut both ways at the unigram level.
                    p("no booking fees", 0.80),
                    p("booking limits apply", -0.60),
                ],
            ),
            decor("when", WHEN),
            decor("audience", AUDIENCE),
            decor(
                "brand",
                &[
                    p("xyz airlines", 0.0),
                    p("skyhop travel", 0.0),
                    p("aerolink", 0.0),
                    p("jetset fares", 0.0),
                    p("cloudnine air", 0.0),
                    p("swift wings travel", 0.0),
                ],
            ),
            pool(
                "tagline",
                &[
                    p("lowest fares guaranteed", 0.90),
                    p("award winning service", 0.50),
                    p("a better way to fly", 0.20),
                    p("now with more routes", 0.05),
                    p("terms and conditions apply", -0.70),
                ],
            ),
        ],
    },
    Domain {
        name: "hotels",
        keywords: &[
            "hotel deals",
            "cheap hotels",
            "luxury hotels",
            "hotels near me",
            "weekend hotel offers",
        ],
        line1: &["{brand}", "{brand} {tagline}", "{tagline} {brand}"],
        line2: &[
            "{when} {offer} {audience} {tier} hotels",
            "{tier} rooms {when} {offer}",
            "book {tier} stays {audience} {offer}",
            "{offer} {when} on {tier} rooms",
            "{tier} stays so {audience} {offer}",
        ],
        line3: &[
            "{amenity} {when} {policy}",
            "{policy} {audience} {amenity}",
            "{when} {amenity} {audience} {policy}",
        ],
        pools: &[
            pool(
                "offer",
                &[
                    p("save big", 1.10),
                    p("pay less", 0.80),
                    p("earn rewards", 0.40),
                    // Query-dependent overlaps (see flights/insurance).
                    p("compare prices", 0.65),
                    p("see listings", -0.30),
                    p("join the waitlist", -0.85),
                ],
            ),
            pool(
                "tier",
                &[
                    p("luxury", 0.55),
                    p("boutique", 0.35),
                    p("budget", -0.15),
                    p("standard", -0.05),
                ],
            ),
            pool(
                "amenity",
                &[
                    p("free breakfast", 1.15),
                    p("rooftop pool", 0.75),
                    p("free wifi", 0.55),
                    p("paid parking", -0.65),
                    p("24 hour support", 0.70),
                ],
            ),
            pool(
                "policy",
                &[
                    p("free cancellation", 1.25),
                    p("no hidden fees", 0.85),
                    p("great rates", -0.10),
                    p("non refundable rates", -1.20),
                    // Deliberate unigram ambiguity: "resort"/"fees" appear
                    // in phrases of opposite salience, so only phrase-level
                    // features resolve the direction.
                    p("resort fees waived", 0.70),
                    p("resort fees apply", -0.90),
                ],
            ),
            decor("when", WHEN),
            decor("audience", AUDIENCE),
            decor(
                "brand",
                &[
                    p("staywell hotels", 0.0),
                    p("roomfinder", 0.0),
                    p("innsight", 0.0),
                    p("suite spot", 0.0),
                    p("nightcap stays", 0.0),
                    p("cozyquarters", 0.0),
                ],
            ),
            pool(
                "tagline",
                &[
                    p("best price promise", 0.85),
                    p("trusted by millions", 0.55),
                    p("sleep happy tonight", 0.25),
                    p("rooms in every city", 0.0),
                    p("booking fees may apply", -0.75),
                ],
            ),
        ],
    },
    Domain {
        name: "shoes",
        keywords: &[
            "running shoes",
            "buy sneakers",
            "trail shoes",
            "discount shoes",
            "marathon shoes",
        ],
        line1: &["{brand}", "{brand} {tagline}", "{tagline} {brand}"],
        line2: &[
            "{deal} {when} on {style} shoes",
            "shop {style} pairs {when} {deal}",
            "{style} collection {crowd} {deal} {when}",
            "{when} {deal} {crowd} on every {style} pair",
            "{style} shoes {crowd} {when} {deal}",
        ],
        line3: &[
            "{shipping} {when} {returns}",
            "{returns} {crowd} {shipping}",
            "{when} {shipping} {crowd} {returns}",
        ],
        pools: &[
            pool(
                "deal",
                &[
                    p("save 30%", 1.35),
                    p("get 2 for 1", 1.05),
                    p("find bargains", 0.45),
                    p("browse styles", -0.10),
                    p("join the waitlist", -0.85),
                    // Hotels' best offer barely moves sneaker shoppers.
                    p("save big", 0.25),
                ],
            ),
            pool(
                "style",
                &[
                    p("running", 0.10),
                    p("trail", 0.05),
                    p("retro", 0.15),
                    p("training", 0.0),
                    p("court", 0.0),
                ],
            ),
            pool(
                "shipping",
                &[
                    p("free shipping", 1.20),
                    p("next day delivery", 0.95),
                    p("flat rate shipping", -0.20),
                    p("in store pickup", 0.10),
                ],
            ),
            pool(
                "returns",
                &[
                    p("free returns", 1.00),
                    p("90 day returns", 0.60),
                    p("final sale only", -1.25),
                    p("restrictions apply", -0.60),
                    // "returns"/"fee" ambiguity at the unigram level.
                    p("returns fee waived", 0.55),
                    p("returns fee applies", -0.85),
                ],
            ),
            decor("when", WHEN),
            decor("crowd", SHOPPERS),
            decor(
                "brand",
                &[
                    p("stride store", 0.0),
                    p("solemates", 0.0),
                    p("runfast gear", 0.0),
                    p("peak footwear", 0.0),
                    p("lacehub", 0.0),
                    p("tempo kicks", 0.0),
                ],
            ),
            pool(
                "tagline",
                &[
                    p("official gear outlet", 0.60),
                    p("lightest shoes around", 0.80),
                    p("new arrivals weekly", 0.30),
                    p("styles for every run", 0.05),
                    p("clearance items excluded", -0.80),
                ],
            ),
        ],
    },
    Domain {
        name: "insurance",
        keywords: &[
            "car insurance quotes",
            "cheap car insurance",
            "home insurance",
            "bundle insurance",
            "renters insurance",
        ],
        line1: &["{brand}", "{brand} {tagline}", "{tagline} {brand}"],
        line2: &[
            "{when} {action} in {time}",
            "{action} {when} and start saving",
            "drivers {when} {action} {audience} in {time}",
            "{audience} {action} {when} in {time}",
            "{action} {audience} in {time} flat",
        ],
        line3: &[
            "{benefit} {when} {claim}",
            "{claim} {audience} {benefit}",
            "{when} {benefit} {audience} {claim}",
        ],
        pools: &[
            pool(
                "action",
                &[
                    p("get a free quote", 1.15),
                    p("switch and save", 0.90),
                    p("compare rates", 0.50),
                    p("request information", -0.40),
                    // Comparison shopping reads as hassle for insurance.
                    p("compare prices", -0.55),
                ],
            ),
            pool(
                "time",
                &[
                    p("2 minutes", 0.70),
                    p("5 minutes", 0.45),
                    p("under an hour", -0.15),
                    p("one call", 0.20),
                ],
            ),
            pool(
                "benefit",
                &[
                    p("accident forgiveness", 0.85),
                    p("multi car discounts", 0.75),
                    p("standard coverage", -0.25),
                    p("fees may apply", -0.80),
                ],
            ),
            pool(
                "claim",
                &[
                    p("24/7 claims", 0.80),
                    p("fast claims", 0.65),
                    p("business hours claims", -0.55),
                    p("24 hour support", 0.95),
                ],
            ),
            decor("when", WHEN),
            decor("audience", AUDIENCE),
            decor(
                "brand",
                &[
                    p("safedrive insurance", 0.0),
                    p("coverwise", 0.0),
                    p("shieldrate", 0.0),
                    p("polyquote", 0.0),
                    p("suretybay", 0.0),
                    p("harborsure", 0.0),
                ],
            ),
            pool(
                "tagline",
                &[
                    p("rated a+ for claims", 0.85),
                    p("drivers save an average of $400", 1.00),
                    p("coverage you can count on", 0.45),
                    p("serving your state", 0.05),
                    p("not available everywhere", -0.70),
                ],
            ),
        ],
    },
];

/// All `{slot}` names referenced by a template string.
pub fn template_slots(template: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        let Some(close_rel) = rest[open..].find('}') else {
            break;
        };
        out.push(&rest[open + 1..open + close_rel]);
        rest = &rest[open + close_rel + 1..];
    }
    out
}

/// Procedurally expanded decor options for a decor pool.
///
/// The static options are combined with modifier × noun products so each
/// decor pool offers *hundreds* of neutral phrasings. This emulates
/// web-scale context sparsity: an n-gram that straddles a salient slot and
/// its decor neighbour almost never recurs across adgroups, so
/// position-blind context features cannot generalize — exactly the data
/// regime in which the paper's position-aware models pay off.
pub fn decor_options(pool: &Pool) -> Vec<String> {
    debug_assert!(
        pool.decor,
        "decor_options called on non-decor pool {}",
        pool.name
    );
    let mut out: Vec<String> = pool.options.iter().map(|p| p.text.to_string()).collect();
    match pool.name {
        "when" => {
            static HEADS: &[&str] = &[
                "today",
                "tonight",
                "right now",
                "any day",
                "all year",
                "by morning",
                "after work",
                "before noon",
                "at midnight",
                "at dawn",
                "on weekdays",
                "on holidays",
                "in minutes",
                "in moments",
                "over lunch",
                "past midnight",
            ];
            static TAILS: &[&str] = &[
                "",
                "guaranteed",
                "no waiting",
                "no hassle",
                "worldwide",
                "locally",
                "from home",
                "from anywhere",
                "on mobile",
                "on any device",
                "with one tap",
                "without signup",
                "at no charge",
                "while supplies last",
            ];
            for h in HEADS {
                for t in TAILS {
                    if t.is_empty() {
                        out.push((*h).to_string());
                    } else {
                        out.push(format!("{h} {t}"));
                    }
                }
            }
        }
        "audience" | "crowd" => {
            static MODS: &[&str] = &[
                "busy",
                "smart",
                "modern",
                "frequent",
                "first time",
                "seasoned",
                "young",
                "everyday",
                "serious",
                "casual",
                "savvy",
                "weekend",
                "city",
                "local",
                "loyal",
                "veteran",
                "active",
                "remote",
            ];
            static NOUNS: &[&str] = &[
                "travelers",
                "families",
                "shoppers",
                "planners",
                "commuters",
                "explorers",
                "buyers",
                "customers",
                "members",
                "couples",
                "students",
                "professionals",
                "locals",
                "visitors",
                "adventurers",
                "browsers",
            ];
            for m in MODS {
                for n in NOUNS {
                    out.push(format!("for {m} {n}"));
                }
            }
        }
        "brand" => {
            // Brands are adgroup identities: procedurally combined so the
            // n-grams straddling a brand and its tagline almost never recur
            // across adgroups.
            static FIRST: &[&str] = &[
                "north", "blue", "bright", "prime", "urban", "swift", "golden", "silver", "summit",
                "valley", "cedar", "atlas",
            ];
            static SECOND: &[&str] = &[
                "line", "point", "nest", "field", "works", "port", "gate", "crest", "haven",
                "forge",
            ];
            static SUFFIX: &[&str] = &["", "co", "group", "labs", "hq"];
            for f in FIRST {
                for s in SECOND {
                    for x in SUFFIX {
                        if x.is_empty() {
                            out.push(format!("{f}{s}"));
                        } else {
                            out.push(format!("{f}{s} {x}"));
                        }
                    }
                }
            }
        }
        other => {
            debug_assert!(false, "unknown decor pool {other}");
        }
    }
    out
}

/// Render a template, substituting each `{slot}` with the chosen phrase
/// text via `choose(slot_name)`.
pub fn render_template(template: &str, mut choose: impl FnMut(&str) -> String) -> String {
    let mut out = String::with_capacity(template.len() + 16);
    let mut rest = template;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        let Some(close_rel) = rest[open..].find('}') else {
            out.push_str(&rest[open..]);
            return out;
        };
        let name = &rest[open + 1..open + close_rel];
        out.push_str(&choose(name));
        rest = &rest[open + close_rel + 1..];
    }
    out.push_str(rest);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn all_template_slots_resolve_to_pools() {
        for domain in DOMAINS {
            for template in domain.line1.iter().chain(domain.line2).chain(domain.line3) {
                for slot in template_slots(template) {
                    assert!(
                        domain.pools.iter().any(|pool| pool.name == slot),
                        "domain {} template {template:?} references unknown slot {slot}",
                        domain.name
                    );
                }
            }
        }
    }

    #[test]
    fn pools_have_multiple_options_with_salience_spread() {
        for domain in DOMAINS {
            for pool in domain.pools {
                assert!(
                    pool.options.len() >= 3,
                    "{}/{} too small",
                    domain.name,
                    pool.name
                );
                let max = pool
                    .options
                    .iter()
                    .map(|p| p.salience)
                    .fold(f64::MIN, f64::max);
                let min = pool
                    .options
                    .iter()
                    .map(|p| p.salience)
                    .fold(f64::MAX, f64::min);
                if pool.decor {
                    assert!(
                        pool.options.iter().all(|p| p.salience == 0.0),
                        "decor must be neutral"
                    );
                } else if pool.name != "city" && pool.name != "style" {
                    assert!(
                        max - min > 0.5,
                        "{}/{} has no spread",
                        domain.name,
                        pool.name
                    );
                }
            }
        }
    }

    #[test]
    fn phrases_are_normalized_text() {
        for domain in DOMAINS {
            for pool in domain.pools {
                for opt in pool.options {
                    assert_eq!(
                        opt.text,
                        opt.text.to_lowercase(),
                        "phrase {:?} not lowercase",
                        opt.text
                    );
                    assert!(!opt.text.is_empty());
                }
            }
        }
    }

    #[test]
    fn query_dependent_salience_exists() {
        // At least a few phrase texts must appear in multiple domains with
        // materially different salience — the M3-beats-M1 mechanism.
        let mut by_text: HashMap<&str, Vec<f64>> = HashMap::new();
        for domain in DOMAINS {
            for pool in domain.pools {
                if pool.decor {
                    continue;
                }
                for opt in pool.options {
                    by_text.entry(opt.text).or_default().push(opt.salience);
                }
            }
        }
        let conflicted = by_text
            .values()
            .filter(|sals| {
                sals.len() >= 2 && {
                    let max = sals.iter().cloned().fold(f64::MIN, f64::max);
                    let min = sals.iter().cloned().fold(f64::MAX, f64::min);
                    max - min > 0.5
                }
            })
            .count();
        assert!(conflicted >= 4, "only {conflicted} query-dependent phrases");
    }

    #[test]
    fn template_slot_parsing() {
        assert_eq!(template_slots("{a} and {b}"), vec!["a", "b"]);
        assert_eq!(template_slots("no slots"), Vec::<&str>::new());
        assert_eq!(template_slots("{only}"), vec!["only"]);
    }

    #[test]
    fn render_substitutes() {
        let rendered = render_template("{offer} flights to {city}", |slot| match slot {
            "offer" => "save 20%".to_string(),
            "city" => "tokyo".to_string(),
            other => panic!("unexpected slot {other}"),
        });
        assert_eq!(rendered, "save 20% flights to tokyo");
    }

    #[test]
    fn render_handles_unclosed_brace() {
        let rendered = render_template("broken {slot", |_| "x".to_string());
        assert_eq!(rendered, "broken {slot");
    }

    #[test]
    fn domains_have_enough_variety() {
        assert!(DOMAINS.len() >= 4);
        for d in DOMAINS {
            assert!(d.keywords.len() >= 3);
            assert!(d.line1.len() >= 2);
            assert!(
                d.line2.len() >= 4,
                "{} needs template variety for position diversity",
                d.name
            );
            assert!(
                d.pools.iter().any(|p| p.decor),
                "{} needs decor pools",
                d.name
            );
        }
    }
}
