//! Synthetic ADCORPUS generator.
//!
//! The paper's evaluation corpus — "tens of millions \[of\] creative pairs,
//! collected from several million adgroups" of Google sponsored-search
//! traffic — is proprietary. This crate is the substitution documented in
//! DESIGN.md: a deterministic, seeded generator whose *generative process is
//! the micro-browsing user model itself*, so the classifier task retains
//! exactly the structure the paper studies:
//!
//! * Advertisers (adgroups) provide several alternative creatives for one
//!   keyword, differing in a few phrase rewrites ([`lexicon`],
//!   [`generator`]).
//! * Users read creatives partially: examination probability decays within
//!   a line and across lines, and is scaled down for right-hand-side
//!   placements ([`user`], [`placement`]).
//! * A click happens when the *examined* phrases are salient enough; CTR
//!   differences between creatives of an adgroup therefore depend on which
//!   words changed **and where they sit** ([`user`]).
//! * Observed clicks are binomial samples plus per-creative idiosyncratic
//!   noise, so labels are realistically noisy ([`util`]).
//!
//! A separate module generates ranked-SERP click logs with a DBN-style
//! ground truth for the click-model baselines of §II ([`sessions`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod generator;
pub mod lexicon;
pub mod placement;
pub mod sessions;
pub mod user;
pub mod util;

pub use drift::{drifted_domain_salience, drifted_salience};
pub use generator::{
    all_domain_salience, generate, generate_with_salience, GeneratorConfig, GroundTruth,
    SynthCorpus,
};
pub use lexicon::{Domain, Phrase, DOMAINS};
pub use placement::placement_profile;
pub use user::{AttentionProfile, MicroUser};
