//! Placement profiles (Table 4: Top vs RHS ads).
//!
//! The paper finds that classifiers trained on top-of-page ads are slightly
//! more accurate than on right-hand-side ads. The mechanism our generator
//! encodes: RHS ads are examined much more lightly, so the creative *text*
//! explains less of the CTR variance and the labels are effectively
//! noisier.

use microbrowse_core::Placement;

use crate::user::AttentionProfile;

/// The attention profile users apply to ads in `placement`.
pub fn placement_profile(placement: Placement) -> AttentionProfile {
    match placement {
        Placement::Top => AttentionProfile::top(),
        Placement::Rhs => AttentionProfile::rhs(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_only_in_scale() {
        let top = placement_profile(Placement::Top);
        let rhs = placement_profile(Placement::Rhs);
        assert!(rhs.scale < top.scale);
        assert_eq!(top.line_base, rhs.line_base);
        assert_eq!(top.pos_decay, rhs.pos_decay);
    }
}
