//! Ranked-SERP session simulation for the click-model baselines (§II).
//!
//! The click-model zoo of `microbrowse-click` needs session logs to fit and
//! compare against. Ground truth here is DBN-style (the richest of the
//! §II models): per query-document attractiveness and satisfaction, plus a
//! global perseverance γ — so the experiment can show which of the simpler
//! models degrade and how, mirroring the qualitative landscape the paper's
//! related-work section describes.

use microbrowse_click::{DocId, QueryId, Session, SessionSet};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration for [`generate_sessions`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Number of distinct queries.
    pub num_queries: usize,
    /// Candidate documents per query (rankings are sampled from these).
    pub docs_per_query: usize,
    /// Ranks displayed per session.
    pub serp_depth: usize,
    /// Total sessions to generate.
    pub num_sessions: usize,
    /// Ground-truth perseverance (DBN γ).
    pub gamma: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            num_queries: 50,
            docs_per_query: 12,
            serp_depth: 10,
            num_sessions: 50_000,
            gamma: 0.85,
            seed: 7,
        }
    }
}

/// The DBN-style ground truth behind a generated session set.
#[derive(Debug, Clone)]
pub struct SessionTruth {
    /// `attractiveness[q][d]`.
    pub attractiveness: Vec<Vec<f64>>,
    /// `satisfaction[q][d]`.
    pub satisfaction: Vec<Vec<f64>>,
    /// Perseverance γ.
    pub gamma: f64,
}

/// Generate a session corpus with a DBN ground truth.
pub fn generate_sessions(cfg: &SessionConfig) -> (SessionSet, SessionTruth) {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Attractiveness skews low (most results ignored); satisfaction mid.
    let attractiveness: Vec<Vec<f64>> = (0..cfg.num_queries)
        .map(|_| {
            (0..cfg.docs_per_query)
                .map(|_| rng.gen_range(0.02..0.55))
                .collect()
        })
        .collect();
    let satisfaction: Vec<Vec<f64>> = (0..cfg.num_queries)
        .map(|_| {
            (0..cfg.docs_per_query)
                .map(|_| rng.gen_range(0.1..0.9))
                .collect()
        })
        .collect();

    let mut set = SessionSet::new();
    let mut doc_pool: Vec<u32> = (0..cfg.docs_per_query as u32).collect();
    for _ in 0..cfg.num_sessions {
        let q = rng.gen_range(0..cfg.num_queries);
        doc_pool.shuffle(&mut rng);
        let depth = cfg.serp_depth.min(cfg.docs_per_query);
        let docs: Vec<DocId> = doc_pool[..depth].iter().map(|&d| DocId(d)).collect();
        let mut clicks = vec![false; depth];
        for i in 0..depth {
            let d = docs[i].0 as usize;
            let clicked = rng.gen_bool(attractiveness[q][d]);
            clicks[i] = clicked;
            if clicked && rng.gen_bool(satisfaction[q][d]) {
                break;
            }
            if !rng.gen_bool(cfg.gamma) {
                break;
            }
        }
        set.push(Session::new(QueryId(q as u32), docs, clicks));
    }
    (
        set,
        SessionTruth {
            attractiveness,
            satisfaction,
            gamma: cfg.gamma,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SessionConfig {
        SessionConfig {
            num_sessions: 3_000,
            num_queries: 5,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic() {
        let (a, _) = generate_sessions(&small());
        let (b, _) = generate_sessions(&small());
        assert_eq!(a.sessions(), b.sessions());
    }

    #[test]
    fn sessions_have_requested_shape() {
        let cfg = small();
        let (set, truth) = generate_sessions(&cfg);
        assert_eq!(set.len(), cfg.num_sessions);
        assert_eq!(set.max_depth(), cfg.serp_depth);
        assert_eq!(truth.attractiveness.len(), cfg.num_queries);
        assert_eq!(truth.gamma, cfg.gamma);
    }

    #[test]
    fn ctr_decays_with_rank() {
        // Position bias must emerge from the cascade structure.
        let (set, _) = generate_sessions(&SessionConfig {
            num_sessions: 30_000,
            ..Default::default()
        });
        let ctr = set.ctr_by_rank();
        assert!(ctr[0] > ctr[3], "ctr {ctr:?}");
        assert!(ctr[3] > ctr[8], "ctr {ctr:?}");
    }

    #[test]
    fn clicks_are_cascade_consistent_in_aggregate() {
        // After a satisfied click the session ends, so multi-click sessions
        // exist but are a minority.
        let (set, _) = generate_sessions(&small());
        let multi = set.sessions().iter().filter(|s| s.num_clicks() > 1).count();
        let single = set
            .sessions()
            .iter()
            .filter(|s| s.num_clicks() == 1)
            .count();
        assert!(multi > 0, "DCM-style multiple clicks must occur");
        assert!(single > multi, "single clicks should dominate");
    }
}
