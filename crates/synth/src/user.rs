//! The ground-truth micro-browsing user.
//!
//! This is the behavioural model the paper hypothesizes (§III), used here as
//! the *generator*: a user does not read a creative word by word — each
//! position `(line, pos)` is examined with probability
//! `scale · line_base[line] · pos_decay^pos` (floored), and the click
//! decision depends only on the salient phrases whose positions were
//! actually examined:
//!
//! ```text
//! P(click | examined set E) = sigmoid(base_logit + Σ_{occ ∈ E} salience(occ))
//! ```
//!
//! The *expected* CTR of a creative marginalizes over examination patterns.
//! With at most a dozen salient occurrences per creative this expectation is
//! computed **exactly** by subset enumeration — no Monte Carlo noise in the
//! ground truth; all sampling noise enters later through binomial click
//! counts.

use microbrowse_text::hash::FxHashMap;
use microbrowse_text::{Snippet, Tokenizer};
use serde::{Deserialize, Serialize};

/// Positional attention curve of the micro-browsing user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttentionProfile {
    /// Base examination probability of position 0 in each line; lines
    /// beyond the vector reuse its last entry.
    pub line_base: Vec<f64>,
    /// Multiplicative decay per token position within a line.
    pub pos_decay: f64,
    /// Lower bound on any examination probability.
    pub floor: f64,
    /// Overall scale (placement effect: Top ≈ 1.0, RHS lower).
    pub scale: f64,
}

impl AttentionProfile {
    /// A strongly position-dependent default (mainline/top ads).
    pub fn top() -> Self {
        Self {
            line_base: vec![0.95, 0.78, 0.55],
            pos_decay: 0.80,
            floor: 0.02,
            scale: 1.0,
        }
    }

    /// Right-hand-side ads: everything is skimmed much more lightly.
    pub fn rhs() -> Self {
        Self {
            scale: 0.55,
            ..Self::top()
        }
    }

    /// Examination probability of `(line, pos)` (both zero-based).
    pub fn exam_prob(&self, line: usize, pos: usize) -> f64 {
        let base = self
            .line_base
            .get(line)
            .or(self.line_base.last())
            .copied()
            .unwrap_or(0.5);
        (self.scale * base * self.pos_decay.powi(pos as i32)).clamp(self.floor, 1.0)
    }
}

/// One salient phrase occurrence found in a creative.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SalientOcc {
    /// Ground-truth salience of the phrase.
    pub salience: f64,
    /// Probability the user examines the occurrence (first-token position).
    pub exam_prob: f64,
}

/// The ground-truth user: attention + phrase salience table.
#[derive(Debug, Clone)]
pub struct MicroUser {
    /// The positional attention curve.
    pub attention: AttentionProfile,
    /// Phrase → salience. Multi-token phrases are matched on token
    /// sequences after normalization.
    pub salience: FxHashMap<String, f64>,
    /// Baseline click logit (sets the overall CTR level; ads are rare
    /// clicks, so strongly negative).
    pub base_logit: f64,
}

#[inline]
fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

impl MicroUser {
    /// Find the salient phrase occurrences of `snippet`, with their
    /// examination probabilities. Longest-match-first within each line so
    /// "free checked bags" is found before "free".
    pub fn salient_occurrences(&self, snippet: &Snippet) -> Vec<SalientOcc> {
        let tokenizer = Tokenizer::default();
        let mut out = Vec::new();
        let max_phrase_tokens = 4usize;
        for (line_idx, line) in snippet.lines().iter().enumerate() {
            let tokens = tokenizer.terms(&line.text);
            let mut covered = vec![false; tokens.len()];
            for len in (1..=max_phrase_tokens.min(tokens.len())).rev() {
                for start in 0..=(tokens.len() - len) {
                    if covered[start..start + len].iter().any(|&c| c) {
                        continue;
                    }
                    let phrase = tokens[start..start + len].join(" ");
                    if let Some(&sal) = self.salience.get(&phrase) {
                        if sal != 0.0 {
                            out.push(SalientOcc {
                                salience: sal,
                                exam_prob: self.attention.exam_prob(line_idx, start),
                            });
                        }
                        for c in &mut covered[start..start + len] {
                            *c = true;
                        }
                    }
                }
            }
        }
        out
    }

    /// Exact expected CTR of a creative: marginalize the click probability
    /// over examination subsets of the salient occurrences.
    ///
    /// Occurrence counts beyond `MAX_EXACT` (rare with realistic templates)
    /// keep only the most-examined occurrences, which bounds the error by
    /// the attention floor.
    pub fn expected_ctr(&self, snippet: &Snippet) -> f64 {
        const MAX_EXACT: usize = 14;
        let mut occs = self.salient_occurrences(snippet);
        if occs.len() > MAX_EXACT {
            occs.sort_by(|a, b| {
                (b.exam_prob * b.salience.abs())
                    .partial_cmp(&(a.exam_prob * a.salience.abs()))
                    .expect("finite")
            });
            occs.truncate(MAX_EXACT);
        }
        let n = occs.len();
        let mut ctr = 0.0;
        for mask in 0u32..(1 << n) {
            let mut prob = 1.0;
            let mut logit = self.base_logit;
            for (i, occ) in occs.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    prob *= occ.exam_prob;
                    logit += occ.salience;
                } else {
                    prob *= 1.0 - occ.exam_prob;
                }
            }
            ctr += prob * sigmoid(logit);
        }
        ctr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn user_with(phrases: &[(&str, f64)], attention: AttentionProfile) -> MicroUser {
        let salience = phrases.iter().map(|&(t, s)| (t.to_string(), s)).collect();
        MicroUser {
            attention,
            salience,
            base_logit: -3.0,
        }
    }

    #[test]
    fn attention_decays_within_and_across_lines() {
        let a = AttentionProfile::top();
        assert!(a.exam_prob(0, 0) > a.exam_prob(0, 3));
        assert!(a.exam_prob(0, 0) > a.exam_prob(1, 0));
        assert!(a.exam_prob(1, 0) > a.exam_prob(2, 0));
        // Floor holds far out.
        assert!(a.exam_prob(2, 50) >= a.floor);
        // Lines beyond the vector reuse the last entry.
        assert_eq!(a.exam_prob(7, 0), a.exam_prob(2, 0));
    }

    #[test]
    fn rhs_attention_is_uniformly_lower() {
        let top = AttentionProfile::top();
        let rhs = AttentionProfile::rhs();
        for line in 0..3 {
            for pos in 0..6 {
                assert!(rhs.exam_prob(line, pos) <= top.exam_prob(line, pos));
            }
        }
    }

    #[test]
    fn finds_multi_token_phrases_longest_first() {
        let user = user_with(
            &[("free checked bags", 1.0), ("free", 0.4), ("bags", 0.2)],
            AttentionProfile::top(),
        );
        let occs = user.salient_occurrences(&Snippet::from_lines(["free checked bags today"]));
        assert_eq!(occs.len(), 1);
        assert_eq!(occs[0].salience, 1.0);
    }

    #[test]
    fn salient_phrase_position_changes_ctr() {
        let user = user_with(&[("save 20%", 1.3)], AttentionProfile::top());
        let early = Snippet::from_lines(["save 20% on flights today", "", ""]);
        let late = Snippet::from_lines(["", "", "book your flights today and save 20%"]);
        let ctr_early = user.expected_ctr(&early);
        let ctr_late = user.expected_ctr(&late);
        assert!(
            ctr_early > ctr_late * 1.3,
            "position must matter: early {ctr_early} late {ctr_late}"
        );
    }

    #[test]
    fn negative_phrases_depress_ctr() {
        let user = user_with(&[("fees may apply", -1.1)], AttentionProfile::top());
        let clean = Snippet::from_lines(["book flights today"]);
        let scary = Snippet::from_lines(["fees may apply book flights"]);
        assert!(user.expected_ctr(&scary) < user.expected_ctr(&clean));
    }

    #[test]
    fn expected_ctr_matches_two_occurrence_hand_computation() {
        let mut user = user_with(&[("good", 1.0), ("bad", -1.0)], AttentionProfile::top());
        user.attention = AttentionProfile {
            line_base: vec![1.0],
            pos_decay: 1.0,
            floor: 0.0,
            scale: 0.5, // every position examined with prob 0.5
        };
        let snippet = Snippet::from_lines(["good bad"]);
        let b = -3.0f64;
        let expect = 0.25 * sigmoid(b)
            + 0.25 * sigmoid(b + 1.0)
            + 0.25 * sigmoid(b - 1.0)
            + 0.25 * sigmoid(b);
        let got = user.expected_ctr(&snippet);
        assert!((got - expect).abs() < 1e-12, "{got} vs {expect}");
    }

    #[test]
    fn no_salient_phrases_gives_base_rate() {
        let user = user_with(&[], AttentionProfile::top());
        let ctr = user.expected_ctr(&Snippet::from_lines(["plain text here"]));
        assert!((ctr - sigmoid(-3.0)).abs() < 1e-12);
    }

    #[test]
    fn ctr_is_a_probability() {
        let user = user_with(
            &[("a", 2.0), ("b", -2.0), ("c", 1.0), ("d", 0.5)],
            AttentionProfile::top(),
        );
        let ctr = user.expected_ctr(&Snippet::from_lines(["a b c d", "a c", "b d"]));
        assert!(ctr > 0.0 && ctr < 1.0);
    }

    #[test]
    fn rhs_user_is_less_sensitive_to_text() {
        let phrases = [("save 20%", 1.3)];
        let top_user = user_with(&phrases, AttentionProfile::top());
        let rhs_user = user_with(&phrases, AttentionProfile::rhs());
        let with = Snippet::from_lines(["save 20% today"]);
        let without = Snippet::from_lines(["book a trip today"]);
        let top_gap = top_user.expected_ctr(&with) - top_user.expected_ctr(&without);
        let rhs_gap = rhs_user.expected_ctr(&with) - rhs_user.expected_ctr(&without);
        assert!(
            top_gap > rhs_gap,
            "RHS text effects must be weaker: top {top_gap} rhs {rhs_gap}"
        );
    }
}
