//! Sampling utilities.

use rand::Rng;

/// Sample a Binomial(n, p) click count.
///
/// Exact Bernoulli summation for small `n`; for large `n` the normal
/// approximation with continuity correction (the regime where it is
/// accurate to well under the noise floor of any experiment here).
pub fn binomial(n: u64, p: f64, rng: &mut impl Rng) -> u64 {
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    if n <= 64 {
        return (0..n).filter(|_| rng.gen_bool(p)).count() as u64;
    }
    let mean = n as f64 * p;
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let draw = mean + sd * gaussian(rng) + 0.5;
    (draw.floor().max(0.0) as u64).min(n)
}

/// Standard normal sample (Box–Muller).
pub fn gaussian(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_edges() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(binomial(0, 0.5, &mut rng), 0);
        assert_eq!(binomial(100, 0.0, &mut rng), 0);
        assert_eq!(binomial(100, 1.0, &mut rng), 100);
        assert!(binomial(10, 0.5, &mut rng) <= 10);
    }

    #[test]
    fn binomial_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        let (n, p) = (10_000u64, 0.07);
        let draws: Vec<u64> = (0..2_000).map(|_| binomial(n, p, &mut rng)).collect();
        let mean: f64 = draws.iter().map(|&d| d as f64).sum::<f64>() / draws.len() as f64;
        let expect_mean = n as f64 * p;
        assert!(
            (mean - expect_mean).abs() < expect_mean * 0.01,
            "mean {mean} vs {expect_mean}"
        );
        let var: f64 = draws
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / draws.len() as f64;
        let expect_var = n as f64 * p * (1.0 - p);
        assert!(
            (var - expect_var).abs() < expect_var * 0.15,
            "var {var} vs {expect_var}"
        );
    }

    #[test]
    fn small_n_path_is_exact_bernoulli() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<u64> = (0..20_000).map(|_| binomial(20, 0.3, &mut rng)).collect();
        let mean: f64 = draws.iter().map(|&d| d as f64).sum::<f64>() / draws.len() as f64;
        assert!((mean - 6.0).abs() < 0.12, "mean {mean}");
        assert!(draws.iter().all(|&d| d <= 20));
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(4);
        let draws: Vec<f64> = (0..50_000).map(|_| gaussian(&mut rng)).collect();
        let mean: f64 = draws.iter().sum::<f64>() / draws.len() as f64;
        let var: f64 = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / draws.len() as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
