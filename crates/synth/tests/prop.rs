//! Property-based tests for the corpus generator: structural invariants
//! must hold for arbitrary configurations and seeds.

use microbrowse_core::Placement;
use microbrowse_synth::{generate, AttentionProfile, GeneratorConfig, MicroUser};
use microbrowse_text::Snippet;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        5usize..40,         // adgroups (small for test speed)
        2usize..5,          // min creatives
        0u64..u64::MAX / 2, // seed
        0.0f64..0.5,        // ctr noise
        0.0f64..1.0,        // template switch prob
        prop_oneof![Just(Placement::Top), Just(Placement::Rhs)],
    )
        .prop_map(
            |(n, cmin, seed, noise, switch, placement)| GeneratorConfig {
                num_adgroups: n,
                creatives_per_adgroup: (cmin, cmin + 2),
                impressions: (500, 5_000),
                placement,
                rewrites_per_variant: (1, 2),
                base_logit: -3.0,
                ctr_noise: noise,
                template_switch_prob: switch,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Structural invariants of every generated corpus.
    #[test]
    fn corpus_invariants(cfg in arb_config()) {
        let sc = generate(&cfg);
        for g in &sc.corpus.adgroups {
            prop_assert!(g.creatives.len() >= 2, "retain_active guarantees pairs");
            prop_assert!(g.total_clicks() >= 1);
            prop_assert_eq!(g.placement, cfg.placement);
            let mut seen_texts = std::collections::HashSet::new();
            for c in &g.creatives {
                prop_assert!(c.clicks <= c.impressions);
                prop_assert!(c.impressions >= cfg.impressions.0);
                prop_assert!(c.impressions <= cfg.impressions.1);
                prop_assert_eq!(c.snippet.num_lines(), 3);
                prop_assert!(
                    seen_texts.insert(c.snippet.to_string()),
                    "duplicate creative text within an adgroup"
                );
            }
        }
        // Creative ids are corpus-unique.
        let mut ids = std::collections::HashSet::new();
        for c in sc.corpus.adgroups.iter().flat_map(|g| &g.creatives) {
            prop_assert!(ids.insert(c.id));
        }
    }

    /// Same config, same corpus — bit-for-bit.
    #[test]
    fn generation_is_deterministic(cfg in arb_config()) {
        let a = generate(&cfg);
        let b = generate(&cfg);
        prop_assert_eq!(a.corpus.adgroups, b.corpus.adgroups);
    }

    /// The oracle CTR is a probability for arbitrary snippets and salience
    /// tables, and monotone in a phrase's salience.
    #[test]
    fn oracle_ctr_is_probability(
        lines in prop::collection::vec("[a-f]{1,5}( [a-f]{1,5}){0,6}", 1..4),
        salience in prop::collection::hash_map("[a-f]{1,5}", -2.0f64..2.0, 0..8),
        scale in 0.1f64..1.0,
    ) {
        let user = MicroUser {
            attention: AttentionProfile { scale, ..AttentionProfile::top() },
            salience: salience.into_iter().collect(),
            base_logit: -3.0,
        };
        let snippet = Snippet::from_lines(lines);
        let ctr = user.expected_ctr(&snippet);
        prop_assert!((0.0..=1.0).contains(&ctr), "ctr {ctr}");
    }

    /// Raising one phrase's salience never lowers a snippet's expected CTR.
    #[test]
    fn oracle_ctr_monotone_in_salience(boost in 0.0f64..2.0) {
        let snippet = Snippet::from_lines(["alpha beta gamma", "delta alpha"]);
        let mk = |s: f64| MicroUser {
            attention: AttentionProfile::top(),
            salience: [("alpha".to_string(), s)].into_iter().collect(),
            base_logit: -3.0,
        };
        let low = mk(0.1).expected_ctr(&snippet);
        let high = mk(0.1 + boost).expected_ctr(&snippet);
        prop_assert!(high >= low - 1e-12, "low {low} high {high}");
    }
}
