//! In-tree Fx-style hashing.
//!
//! The workspace's hot maps are keyed by small integers ([`crate::Sym`]) and
//! short byte strings. The standard library's SipHash 1-3 is
//! collision-resistant but slow for such keys; the Rust compiler's `FxHash`
//! is the usual remedy. To keep the dependency set inside the approved list
//! we reimplement the (public domain) Fx algorithm here — it is ~30 lines.
//!
//! **Not** HashDoS-resistant: only use for keys derived from our own data
//! (symbols, feature keys), never for untrusted network input.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Firefox/rustc "Fx" hash: a multiply-rotate over machine words.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(&bytes[..8]);
            self.add_to_hash(u64::from_le_bytes(buf));
            bytes = &bytes[8..];
        }
        if bytes.len() >= 4 {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(&bytes[..4]);
            self.add_to_hash(u64::from(u32::from_le_bytes(buf)));
            bytes = &bytes[4..];
        }
        for &b in bytes {
            self.add_to_hash(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_bytes(b: &[u8]) -> u64 {
        let mut h = FxHasher::default();
        h.write(b);
        h.finish()
    }

    #[test]
    fn deterministic() {
        assert_eq!(hash_bytes(b"cheap flights"), hash_bytes(b"cheap flights"));
    }

    #[test]
    fn distinguishes_nearby_inputs() {
        assert_ne!(hash_bytes(b"cheap flights"), hash_bytes(b"cheap flight"));
        assert_ne!(hash_bytes(b"ab"), hash_bytes(b"ba"));
    }

    #[test]
    fn integer_writes_differ_from_each_other() {
        let mut a = FxHasher::default();
        a.write_u32(7);
        let mut b = FxHasher::default();
        b.write_u32(8);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_work_end_to_end() {
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("legroom", 1);
        m.insert("discount", 2);
        assert_eq!(m.get("legroom"), Some(&1));

        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..1000 {
            s.insert(i);
        }
        assert_eq!(s.len(), 1000);
        assert!(s.contains(&999));
    }

    #[test]
    fn empty_input_hash_is_stable_zero_state() {
        // An empty write leaves the hasher in its initial state; two empty
        // hashers must agree.
        assert_eq!(hash_bytes(b""), FxHasher::default().finish());
    }
}
