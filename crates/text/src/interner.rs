//! String interning.
//!
//! The feature statistics database (paper §V-C) holds counts for hundreds of
//! thousands of distinct n-grams, and the classifier touches them in inner
//! loops. Interning maps each distinct term string to a dense [`Sym`] (a
//! `u32` newtype) exactly once, after which every comparison, hash, and map
//! key is integer-sized.
//!
//! Two flavors:
//! * [`Interner`] — single-threaded, used inside per-thread corpus shards.
//! * [`SharedInterner`] — `RwLock`-guarded (via `parking_lot`), used when
//!   the parallel stats builder needs one global symbol space.

use std::fmt;
use std::sync::Arc;

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};

use crate::hash::FxHashMap;

/// A dense symbol id for an interned string. Cheap to copy, hash, compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Sym(pub u32);

impl Sym {
    /// The underlying index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A single-threaded string interner.
///
/// Guarantees: `resolve(intern(s)) == s`, and `intern` is idempotent —
/// interning the same string twice yields the same [`Sym`].
#[derive(Debug, Default, Clone)]
pub struct Interner {
    map: FxHashMap<Arc<str>, Sym>,
    strings: Vec<Arc<str>>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its symbol. O(1) amortized.
    pub fn intern(&mut self, s: &str) -> Sym {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let arc: Arc<str> = Arc::from(s);
        let sym = Sym(u32::try_from(self.strings.len())
            .expect("interner overflow: > u32::MAX distinct strings"));
        self.strings.push(Arc::clone(&arc));
        self.map.insert(arc, sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` if `s` was never
    /// interned.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.map.get(s).copied()
    }

    /// Resolve a symbol back to its string. Panics on a foreign symbol.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.strings[sym.index()]
    }

    /// Resolve, returning `None` for out-of-range symbols instead of
    /// panicking.
    pub fn try_resolve(&self, sym: Sym) -> Option<&str> {
        self.strings.get(sym.index()).map(|s| &**s)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterate `(Sym, &str)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (Sym(i as u32), &**s))
    }
}

/// A thread-safe interner sharing one symbol space across worker threads.
///
/// Reads (the overwhelmingly common case once the vocabulary saturates) take
/// a read lock; only novel strings take the write lock.
#[derive(Debug, Default, Clone)]
pub struct SharedInterner {
    inner: Arc<RwLock<Interner>>,
}

impl SharedInterner {
    /// Create an empty shared interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s` (read-lock fast path, write lock only on novelty).
    pub fn intern(&self, s: &str) -> Sym {
        if let Some(sym) = self.inner.read().get(s) {
            return sym;
        }
        self.inner.write().intern(s)
    }

    /// Look up without interning.
    pub fn get(&self, s: &str) -> Option<Sym> {
        self.inner.read().get(s)
    }

    /// Resolve to an owned string (the lock cannot escape).
    pub fn resolve(&self, sym: Sym) -> Option<String> {
        self.inner.read().try_resolve(sym).map(str::to_owned)
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// Whether the interner is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Snapshot the current contents into a plain [`Interner`].
    pub fn snapshot(&self) -> Interner {
        self.inner.read().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("cheap");
        let b = i.intern("cheap");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let words = ["cheap", "flights", "legroom", "20%", ""];
        let syms: Vec<Sym> = words.iter().map(|w| i.intern(w)).collect();
        for (w, s) in words.iter().zip(&syms) {
            assert_eq!(i.resolve(*s), *w);
        }
        assert_eq!(i.len(), words.len());
    }

    #[test]
    fn symbols_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), Sym(0));
        assert_eq!(i.intern("b"), Sym(1));
        assert_eq!(i.intern("a"), Sym(0));
        assert_eq!(i.intern("c"), Sym(2));
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        assert_eq!(i.len(), 0);
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn try_resolve_handles_foreign_syms() {
        let i = Interner::new();
        assert_eq!(i.try_resolve(Sym(7)), None);
    }

    #[test]
    fn iter_yields_in_order() {
        let mut i = Interner::new();
        i.intern("a");
        i.intern("b");
        let got: Vec<(Sym, String)> = i.iter().map(|(s, t)| (s, t.to_owned())).collect();
        assert_eq!(
            got,
            vec![(Sym(0), "a".to_owned()), (Sym(1), "b".to_owned())]
        );
    }

    #[test]
    fn shared_interner_agrees_across_clones() {
        let shared = SharedInterner::new();
        let s1 = shared.clone();
        let s2 = shared.clone();
        let a = s1.intern("hello");
        let b = s2.intern("hello");
        assert_eq!(a, b);
        assert_eq!(shared.len(), 1);
        assert_eq!(shared.resolve(a).as_deref(), Some("hello"));
    }

    #[test]
    fn shared_interner_under_threads() {
        let shared = SharedInterner::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sh = shared.clone();
                scope.spawn(move || {
                    for k in 0..100 {
                        // Half shared vocabulary, half thread-private.
                        sh.intern(&format!("common-{}", k % 10));
                        sh.intern(&format!("t{t}-{k}"));
                    }
                });
            }
        });
        // 10 common + 4*100 private.
        assert_eq!(shared.len(), 10 + 400);
        // Every symbol resolves to a unique string (bijectivity).
        let snap = shared.snapshot();
        let mut seen = std::collections::HashSet::new();
        for (_, s) in snap.iter() {
            assert!(seen.insert(s.to_owned()), "duplicate string {s}");
        }
    }
}
