//! Text substrate for the `microbrowse` workspace.
//!
//! This crate owns everything about *snippet text* that the micro-browsing
//! model ([Islam, Srikant, Basu; ICDE 2019]) needs before any statistics or
//! learning happen:
//!
//! * [`mod@normalize`] — deterministic text normalization (case folding,
//!   punctuation policy) so that "Cheap Flights!" and "cheap flights" map to
//!   the same terms.
//! * [`tokenizer`] — a span-preserving word tokenizer.
//! * [`interner`] — a string interner mapping terms to dense [`Sym`] ids;
//!   every other crate in the workspace works in symbol space.
//! * [`ngram`] — unigram/bigram/trigram extraction with (line, position)
//!   provenance, the raw material for the paper's *term features*.
//! * [`snippet`] — the [`Snippet`] type: a short multi-line ad creative or
//!   organic result snippet, plus its tokenized view.
//! * [`hash`] — an in-tree Fx-style hasher so hot maps keyed by `Sym` do not
//!   pay SipHash costs (see the workspace DESIGN.md for the dependency
//!   policy).
//!
//! The crate has no opinion about relevance, CTR, or learning; it only
//! guarantees that tokenization is deterministic, positions are stable, and
//! symbols are bijective with strings.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod hash;
pub mod interner;
pub mod ngram;
pub mod normalize;
pub mod snippet;
pub mod tokenizer;

pub use hash::{FxHashMap, FxHashSet};
pub use interner::{Interner, SharedInterner, Sym};
pub use ngram::{NGram, NGramConfig, NGramExtractor, TermOccurrence};
pub use normalize::{normalize, NormalizeConfig};
pub use snippet::{Line, Snippet, TokenizedSnippet};
pub use tokenizer::{Token, Tokenizer, TokenizerConfig};
