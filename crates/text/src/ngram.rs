//! N-gram extraction with positional provenance.
//!
//! The snippet classifier's *term features* (paper §IV-A) are "unigrams,
//! bigrams, and trigrams" together with "the position of a term in a line
//! and the number of the line". [`NGramExtractor`] produces exactly that:
//! every n-gram phrase (interned as a single symbol, e.g. `"find cheap"`)
//! annotated with its line index and its starting token position within the
//! line.

use serde::{Deserialize, Serialize};

use crate::interner::{Interner, Sym};
use crate::snippet::TokenizedSnippet;

/// An n-gram phrase: the interned space-joined phrase and its order `n`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct NGram {
    /// Interned phrase symbol (e.g. the symbol for `"get discounts"`).
    pub phrase: Sym,
    /// N-gram order: 1, 2, or 3 under the default config.
    pub n: u8,
}

/// An n-gram occurrence inside a snippet: which phrase, where.
///
/// `line` and `pos` are the `(line number, position in line)` pair the paper
/// threads through Eq. 6; `pos` is the index of the n-gram's *first* token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TermOccurrence {
    /// The n-gram phrase.
    pub ngram: NGram,
    /// Zero-based line index in the snippet.
    pub line: u8,
    /// Zero-based token position of the phrase's first token in the line.
    pub pos: u16,
}

/// Which n-gram orders to extract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NGramConfig {
    /// Minimum n-gram order (inclusive), ≥ 1.
    pub min_n: u8,
    /// Maximum n-gram order (inclusive).
    pub max_n: u8,
}

impl Default for NGramConfig {
    /// The paper's setting: unigrams, bigrams, and trigrams.
    fn default() -> Self {
        Self { min_n: 1, max_n: 3 }
    }
}

impl NGramConfig {
    /// Unigrams only (the degenerate bag-of-words setting).
    pub fn unigrams() -> Self {
        Self { min_n: 1, max_n: 1 }
    }

    /// Validate `min_n/max_n` sanity.
    pub fn is_valid(&self) -> bool {
        self.min_n >= 1 && self.min_n <= self.max_n
    }
}

/// Extracts positional n-grams from tokenized snippets.
#[derive(Debug, Clone, Copy, Default)]
pub struct NGramExtractor {
    cfg: NGramConfig,
}

impl NGramExtractor {
    /// Create an extractor; panics if the config is invalid (programmer
    /// error, not data error).
    pub fn new(cfg: NGramConfig) -> Self {
        assert!(cfg.is_valid(), "invalid NGramConfig: {cfg:?}");
        Self { cfg }
    }

    /// The active configuration.
    pub fn config(&self) -> &NGramConfig {
        &self.cfg
    }

    /// Extract all n-gram occurrences from `snippet`.
    ///
    /// Multi-token phrases are interned into `interner` as space-joined
    /// strings, so the same phrase extracted from different snippets maps to
    /// the same [`Sym`].
    pub fn extract(
        &self,
        snippet: &TokenizedSnippet,
        interner: &mut Interner,
    ) -> Vec<TermOccurrence> {
        let mut out = Vec::new();
        self.extract_into(snippet, interner, &mut out);
        out
    }

    /// Extract into a caller-provided buffer, reusing its capacity.
    ///
    /// Identical to [`NGramExtractor::extract`] — same occurrence order,
    /// same interner side effects — but `out` is cleared and refilled in
    /// place so a warmed-up buffer incurs no per-snippet vector allocation.
    pub fn extract_into(
        &self,
        snippet: &TokenizedSnippet,
        interner: &mut Interner,
        out: &mut Vec<TermOccurrence>,
    ) {
        out.clear();
        let mut buf = String::new();
        for (li, line) in snippet.lines.iter().enumerate() {
            let li = li.min(u8::MAX as usize) as u8;
            for n in self.cfg.min_n..=self.cfg.max_n {
                let n_usize = n as usize;
                if line.len() < n_usize {
                    continue;
                }
                for start in 0..=(line.len() - n_usize) {
                    let phrase = if n == 1 {
                        line[start]
                    } else {
                        buf.clear();
                        for (k, sym) in line[start..start + n_usize].iter().enumerate() {
                            if k > 0 {
                                buf.push(' ');
                            }
                            buf.push_str(interner.resolve(*sym));
                        }
                        interner.intern(&buf)
                    };
                    out.push(TermOccurrence {
                        ngram: NGram { phrase, n },
                        line: li,
                        pos: start.min(u16::MAX as usize) as u16,
                    });
                }
            }
        }
    }

    /// Extract and return the distinct n-gram phrases (without positions),
    /// useful for presence/absence term features (models M1/M3/M5).
    pub fn extract_phrases(
        &self,
        snippet: &TokenizedSnippet,
        interner: &mut Interner,
    ) -> Vec<NGram> {
        let occs = self.extract(snippet, interner);
        let mut seen = crate::hash::FxHashSet::default();
        let mut out = Vec::with_capacity(occs.len());
        for occ in occs {
            if seen.insert(occ.ngram) {
                out.push(occ.ngram);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snippet::Snippet;
    use crate::tokenizer::Tokenizer;

    fn setup(lines: &[&str]) -> (TokenizedSnippet, Interner) {
        let mut interner = Interner::new();
        let tok = Snippet::from_lines(lines.iter().copied())
            .tokenize(&Tokenizer::default(), &mut interner);
        (tok, interner)
    }

    fn phrases(occs: &[TermOccurrence], interner: &Interner) -> Vec<(String, u8, u8, u16)> {
        occs.iter()
            .map(|o| {
                (
                    interner.resolve(o.ngram.phrase).to_owned(),
                    o.ngram.n,
                    o.line,
                    o.pos,
                )
            })
            .collect()
    }

    #[test]
    fn unigrams_bigrams_trigrams() {
        let (tok, mut interner) = setup(&["find cheap flights"]);
        let occs = NGramExtractor::default().extract(&tok, &mut interner);
        let got = phrases(&occs, &interner);
        assert!(got.contains(&("find".into(), 1, 0, 0)));
        assert!(got.contains(&("cheap".into(), 1, 0, 1)));
        assert!(got.contains(&("find cheap".into(), 2, 0, 0)));
        assert!(got.contains(&("cheap flights".into(), 2, 0, 1)));
        assert!(got.contains(&("find cheap flights".into(), 3, 0, 0)));
        // 3 unigrams + 2 bigrams + 1 trigram
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn occurrence_count_formula() {
        // A line of m tokens yields m + (m-1) + (m-2) occurrences for n=1..3.
        let (tok, mut interner) = setup(&["a b c d e f"]);
        let occs = NGramExtractor::default().extract(&tok, &mut interner);
        assert_eq!(occs.len(), 6 + 5 + 4);
    }

    #[test]
    fn short_lines_skip_large_n() {
        let (tok, mut interner) = setup(&["hi"]);
        let occs = NGramExtractor::default().extract(&tok, &mut interner);
        assert_eq!(occs.len(), 1);
        assert_eq!(occs[0].ngram.n, 1);
    }

    #[test]
    fn empty_snippet_yields_nothing() {
        let (tok, mut interner) = setup(&[]);
        assert!(NGramExtractor::default()
            .extract(&tok, &mut interner)
            .is_empty());
        let (tok, mut interner) = setup(&["", ""]);
        assert!(NGramExtractor::default()
            .extract(&tok, &mut interner)
            .is_empty());
    }

    #[test]
    fn line_indices_carried_through() {
        let (tok, mut interner) = setup(&["one", "two words", "three little words"]);
        let occs = NGramExtractor::new(NGramConfig::unigrams()).extract(&tok, &mut interner);
        let lines: Vec<u8> = occs.iter().map(|o| o.line).collect();
        assert_eq!(lines, vec![0, 1, 1, 2, 2, 2]);
    }

    #[test]
    fn same_phrase_same_symbol_across_snippets() {
        let mut interner = Interner::new();
        let t = Tokenizer::default();
        let a = Snippet::from_lines(["find cheap flights"]).tokenize(&t, &mut interner);
        let b = Snippet::from_lines(["really cheap flights here"]).tokenize(&t, &mut interner);
        let ex = NGramExtractor::default();
        let oa = ex.extract(&a, &mut interner);
        let ob = ex.extract(&b, &mut interner);
        let sym_a = oa
            .iter()
            .find(|o| interner.resolve(o.ngram.phrase) == "cheap flights")
            .unwrap()
            .ngram
            .phrase;
        let sym_b = ob
            .iter()
            .find(|o| interner.resolve(o.ngram.phrase) == "cheap flights")
            .unwrap()
            .ngram
            .phrase;
        assert_eq!(sym_a, sym_b);
    }

    #[test]
    fn extract_phrases_dedups() {
        let (tok, mut interner) = setup(&["buy now buy now"]);
        let ex = NGramExtractor::new(NGramConfig::unigrams());
        let ph = ex.extract_phrases(&tok, &mut interner);
        assert_eq!(ph.len(), 2); // "buy", "now"
    }

    #[test]
    #[should_panic(expected = "invalid NGramConfig")]
    fn invalid_config_panics() {
        let _ = NGramExtractor::new(NGramConfig { min_n: 2, max_n: 1 });
    }
}
