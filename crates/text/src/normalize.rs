//! Text normalization.
//!
//! Ad creatives arrive with arbitrary casing and punctuation ("No
//! reservation costs. Great rates!"). The micro-browsing pipeline compares
//! *terms* across millions of creatives, so two surface forms of the same
//! phrase must normalize identically — otherwise the feature statistics
//! database (paper §V-C) fragments and every downstream estimate gets
//! noisier.
//!
//! Normalization is intentionally simple and deterministic:
//!
//! 1. Unicode-aware lowercasing (`char::to_lowercase`).
//! 2. Punctuation handling per [`PunctPolicy`].
//! 3. Whitespace collapsing (runs of whitespace become a single space;
//!    leading/trailing whitespace dropped).
//!
//! There is deliberately no stemming or stop-word removal: the paper's
//! examples ("flights" → "flying") rely on surface-form rewrites being
//! visible to the model.

use serde::{Deserialize, Serialize};

/// What to do with punctuation characters during normalization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PunctPolicy {
    /// Replace each punctuation character with a space (default).
    ///
    /// `"20%-off!"` → `"20% off"` is *not* what happens — `%` is kept because
    /// it is meaning-bearing in ads; see [`is_kept_symbol`].
    #[default]
    Space,
    /// Delete punctuation characters entirely.
    Strip,
    /// Keep punctuation as-is (only lowercase + whitespace collapsing).
    Keep,
}

/// Configuration for [`normalize`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct NormalizeConfig {
    /// Punctuation policy.
    pub punct: PunctPolicy,
}

/// Symbols that carry meaning in ad text and survive all punctuation
/// policies except [`PunctPolicy::Keep`] (where everything survives anyway).
///
/// `%` ("20% off"), `$`/`€`/`£` (prices), `&` ("bed & breakfast"), and `'`
/// (contractions, possessives) all change what a user perceives.
#[inline]
pub fn is_kept_symbol(c: char) -> bool {
    matches!(c, '%' | '$' | '€' | '£' | '&' | '\'')
}

fn is_strippable_punct(c: char) -> bool {
    (c.is_ascii_punctuation()
        || c == '…'
        || c == '—'
        || c == '–'
        || c == '\u{201C}'
        || c == '\u{201D}')
        && !is_kept_symbol(c)
}

/// Normalize `input` according to `cfg`.
///
/// The output is lowercase, has no leading/trailing whitespace, and contains
/// no runs of more than one space.
///
/// ```
/// use microbrowse_text::normalize::{normalize, NormalizeConfig};
/// let cfg = NormalizeConfig::default();
/// assert_eq!(normalize("  Find CHEAP   flights!  ", &cfg), "find cheap flights");
/// assert_eq!(normalize("20% Off — Today", &cfg), "20% off today");
/// ```
pub fn normalize(input: &str, cfg: &NormalizeConfig) -> String {
    let mut out = String::with_capacity(input.len());
    let mut pending_space = false;
    for raw in input.chars() {
        let mapped: Option<char> = if raw.is_whitespace() {
            None // treated as a space request below
        } else if is_strippable_punct(raw) {
            match cfg.punct {
                PunctPolicy::Space => None,
                PunctPolicy::Strip => continue,
                PunctPolicy::Keep => Some(raw),
            }
        } else {
            Some(raw)
        };

        match mapped {
            None => {
                if !out.is_empty() {
                    pending_space = true;
                }
            }
            Some(c) => {
                if pending_space {
                    out.push(' ');
                    pending_space = false;
                }
                for lc in c.to_lowercase() {
                    out.push(lc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(s: &str) -> String {
        normalize(s, &NormalizeConfig::default())
    }

    #[test]
    fn lowercases_and_collapses() {
        assert_eq!(norm("XYZ Airlines"), "xyz airlines");
        assert_eq!(norm("A   B\t\nC"), "a b c");
    }

    #[test]
    fn strips_leading_trailing() {
        assert_eq!(norm("  hello  "), "hello");
        assert_eq!(norm("\t\n"), "");
        assert_eq!(norm(""), "");
    }

    #[test]
    fn default_punct_becomes_space() {
        assert_eq!(
            norm("No reservation costs. Great rates!"),
            "no reservation costs great rates"
        );
        assert_eq!(
            norm("Flying to New York? Get discounts."),
            "flying to new york get discounts"
        );
    }

    #[test]
    fn meaningful_symbols_are_kept() {
        assert_eq!(norm("20% Off"), "20% off");
        assert_eq!(norm("$99 deals"), "$99 deals");
        assert_eq!(norm("Bed & Breakfast"), "bed & breakfast");
        assert_eq!(norm("Don't miss"), "don't miss");
    }

    #[test]
    fn strip_policy_deletes_punct() {
        let cfg = NormalizeConfig {
            punct: PunctPolicy::Strip,
        };
        assert_eq!(normalize("great-rates!", &cfg), "greatrates");
    }

    #[test]
    fn keep_policy_preserves_punct() {
        let cfg = NormalizeConfig {
            punct: PunctPolicy::Keep,
        };
        assert_eq!(normalize("Great Rates!", &cfg), "great rates!");
    }

    #[test]
    fn unicode_lowercase_expansion() {
        // 'İ' lowercases to "i\u{307}" (two chars); must not panic and must
        // remain deterministic.
        assert_eq!(norm("İstanbul"), norm("İstanbul"));
        assert_eq!(norm("STRASSE"), "strasse");
    }

    #[test]
    fn punct_only_input_is_empty() {
        assert_eq!(norm("!!! ... ---"), "");
    }

    #[test]
    fn idempotent() {
        for s in ["Find Cheap Flights!", "  20% OFF  ", "a—b…c", ""] {
            let once = norm(s);
            assert_eq!(norm(&once), once, "normalize must be idempotent on {s:?}");
        }
    }
}
