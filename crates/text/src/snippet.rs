//! Snippet types.
//!
//! A *snippet* in the paper is the short multi-line text a user sees on a
//! results page: an organic result snippet or a sponsored-search creative
//! (typically 3 lines, e.g. headline / description line 1 / description
//! line 2). [`Snippet`] stores the raw lines; [`TokenizedSnippet`] is its
//! normalized, interned view — the form every model in the workspace
//! consumes.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::interner::{Interner, Sym};
use crate::tokenizer::Tokenizer;

/// Maximum number of lines a snippet may carry. Sponsored creatives in the
/// paper are 3 lines; we allow a little slack for organic snippets.
pub const MAX_LINES: usize = 8;

/// One line of a snippet: its raw text.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Line {
    /// The raw (un-normalized) text of the line.
    pub text: String,
}

impl Line {
    /// Construct a line from any string-ish value.
    pub fn new(text: impl Into<String>) -> Self {
        Self { text: text.into() }
    }
}

/// A search-result snippet or ad creative: an ordered list of short lines.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Snippet {
    lines: Vec<Line>,
}

impl Snippet {
    /// Build a snippet from raw line texts. Lines beyond [`MAX_LINES`] are
    /// truncated (ad platforms enforce similar hard caps).
    pub fn from_lines<I, S>(lines: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let lines = lines.into_iter().take(MAX_LINES).map(Line::new).collect();
        Self { lines }
    }

    /// The classic 3-line creative constructor used throughout the paper's
    /// examples.
    pub fn creative(
        headline: impl Into<String>,
        desc1: impl Into<String>,
        desc2: impl Into<String>,
    ) -> Self {
        Self::from_lines([headline.into(), desc1.into(), desc2.into()])
    }

    /// The snippet's lines.
    pub fn lines(&self) -> &[Line] {
        &self.lines
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Whether the snippet has no lines.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Tokenize every line with `tokenizer`, interning each token into
    /// `interner`.
    pub fn tokenize(&self, tokenizer: &Tokenizer, interner: &mut Interner) -> TokenizedSnippet {
        let lines = self
            .lines
            .iter()
            .map(|line| {
                tokenizer
                    .terms(&line.text)
                    .iter()
                    .map(|t| interner.intern(t))
                    .collect()
            })
            .collect();
        TokenizedSnippet { lines }
    }

    /// Tokenize into a caller-provided [`TokenizedSnippet`], reusing its
    /// per-line symbol buffers. Produces exactly what [`Snippet::tokenize`]
    /// would — same tokens, same interner side effects — but a warmed-up
    /// buffer avoids reallocating the `Vec<Sym>` lines on every snippet.
    pub fn tokenize_into(
        &self,
        tokenizer: &Tokenizer,
        interner: &mut Interner,
        out: &mut TokenizedSnippet,
    ) {
        out.lines.truncate(self.lines.len());
        while out.lines.len() < self.lines.len() {
            out.lines.push(Vec::new());
        }
        for (line, dst) in self.lines.iter().zip(out.lines.iter_mut()) {
            dst.clear();
            for t in tokenizer.terms(&line.text) {
                dst.push(interner.intern(&t));
            }
        }
    }
}

impl fmt::Display for Snippet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, line) in self.lines.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}", line.text)?;
        }
        Ok(())
    }
}

/// The tokenized, interned view of a [`Snippet`]: one `Vec<Sym>` per line,
/// in line order, token order preserved.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct TokenizedSnippet {
    /// Interned tokens, one vector per snippet line.
    pub lines: Vec<Vec<Sym>>,
}

impl TokenizedSnippet {
    /// Total number of tokens across all lines (the `m` in Eq. 3).
    pub fn num_terms(&self) -> usize {
        self.lines.iter().map(Vec::len).sum()
    }

    /// Number of lines.
    pub fn num_lines(&self) -> usize {
        self.lines.len()
    }

    /// Iterate `(line_idx, pos_in_line, sym)` over every token.
    pub fn iter_terms(&self) -> impl Iterator<Item = (usize, usize, Sym)> + '_ {
        self.lines
            .iter()
            .enumerate()
            .flat_map(|(li, line)| line.iter().enumerate().map(move |(pi, &s)| (li, pi, s)))
    }

    /// Render back to text through an interner (space-joined tokens per
    /// line). Useful in tests and reports; lossy with respect to original
    /// punctuation by design.
    pub fn render(&self, interner: &Interner) -> Snippet {
        Snippet::from_lines(self.lines.iter().map(|line| {
            line.iter()
                .map(|s| interner.resolve(*s))
                .collect::<Vec<_>>()
                .join(" ")
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creative_has_three_lines() {
        let s = Snippet::creative(
            "XYZ Airlines",
            "Find cheap flights to New York.",
            "No reservation costs. Great rates",
        );
        assert_eq!(s.num_lines(), 3);
        assert_eq!(s.lines()[0].text, "XYZ Airlines");
    }

    #[test]
    fn from_lines_truncates_at_cap() {
        let many: Vec<String> = (0..20).map(|i| format!("line {i}")).collect();
        let s = Snippet::from_lines(many);
        assert_eq!(s.num_lines(), MAX_LINES);
    }

    #[test]
    fn display_joins_with_newlines() {
        let s = Snippet::from_lines(["a", "b"]);
        assert_eq!(s.to_string(), "a\nb");
        assert_eq!(Snippet::default().to_string(), "");
    }

    #[test]
    fn tokenize_preserves_structure() {
        let s = Snippet::creative("XYZ Airlines", "Find cheap flights.", "Great rates!");
        let mut interner = Interner::new();
        let tok = s.tokenize(&Tokenizer::default(), &mut interner);
        assert_eq!(tok.num_lines(), 3);
        assert_eq!(tok.lines[0].len(), 2);
        assert_eq!(tok.lines[1].len(), 3);
        assert_eq!(tok.lines[2].len(), 2);
        assert_eq!(tok.num_terms(), 7);
        assert_eq!(interner.resolve(tok.lines[1][1]), "cheap");
    }

    #[test]
    fn iter_terms_is_ordered() {
        let s = Snippet::from_lines(["a b", "c"]);
        let mut interner = Interner::new();
        let tok = s.tokenize(&Tokenizer::default(), &mut interner);
        let got: Vec<(usize, usize, &str)> = tok
            .iter_terms()
            .map(|(l, p, s)| (l, p, interner.resolve(s)))
            .collect();
        assert_eq!(got, vec![(0, 0, "a"), (0, 1, "b"), (1, 0, "c")]);
    }

    #[test]
    fn render_round_trips_normalized_text() {
        let s = Snippet::creative("Fly Now", "20% off today", "book direct");
        let mut interner = Interner::new();
        let tok = s.tokenize(&Tokenizer::default(), &mut interner);
        let back = tok.render(&interner);
        assert_eq!(back.lines()[0].text, "fly now");
        assert_eq!(back.lines()[1].text, "20% off today");
    }

    #[test]
    fn empty_lines_tokenize_to_empty_vectors() {
        let s = Snippet::from_lines(["", "hello", "!!!"]);
        let mut interner = Interner::new();
        let tok = s.tokenize(&Tokenizer::default(), &mut interner);
        assert_eq!(tok.lines[0].len(), 0);
        assert_eq!(tok.lines[1].len(), 1);
        assert_eq!(tok.lines[2].len(), 0);
    }
}
