//! Span-preserving word tokenizer.
//!
//! The micro-browsing model cares about *where* a term sits inside a snippet
//! line (paper §IV-A: "The position of a term in a line and the number of
//! the line in the snippet are also considered as features"). The tokenizer
//! therefore reports, for every token, both its text and its byte span in
//! the (normalized) input, so positions are reconstructible and testable.
//!
//! Tokens are maximal runs of alphanumeric characters plus the
//! meaning-bearing symbols from [`crate::normalize::is_kept_symbol`]
//! (`20%`, `$99`, `don't`). Everything else separates tokens.

use serde::{Deserialize, Serialize};

use crate::normalize::{is_kept_symbol, normalize, NormalizeConfig};

/// A single token: its text and the half-open byte span `[start, end)` in
/// the string it was produced from.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The token text (already normalized if produced by
    /// [`Tokenizer::tokenize_normalized`]).
    pub text: String,
    /// Byte offset of the first byte of the token.
    pub start: usize,
    /// Byte offset one past the last byte of the token.
    pub end: usize,
}

impl Token {
    /// The token's length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the token is empty (never true for tokenizer output).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Configuration for [`Tokenizer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TokenizerConfig {
    /// Normalization applied by [`Tokenizer::tokenize_normalized`].
    pub normalize: NormalizeConfig,
    /// Maximum number of tokens to emit per call (0 = unlimited). Ad lines
    /// are short; a cap protects the pipeline from pathological inputs.
    pub max_tokens: usize,
}

/// A deterministic word tokenizer. Cheap to construct; carries only config.
#[derive(Debug, Clone, Copy, Default)]
pub struct Tokenizer {
    cfg: TokenizerConfig,
}

#[inline]
fn is_token_char(c: char) -> bool {
    c.is_alphanumeric() || is_kept_symbol(c)
}

impl Tokenizer {
    /// Create a tokenizer with the given configuration.
    pub fn new(cfg: TokenizerConfig) -> Self {
        Self { cfg }
    }

    /// Access the configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.cfg
    }

    /// Tokenize `input` as-is (no normalization). Spans index into `input`.
    pub fn tokenize(&self, input: &str) -> Vec<Token> {
        let mut out = Vec::new();
        let mut start: Option<usize> = None;
        for (idx, c) in input.char_indices() {
            if is_token_char(c) {
                if start.is_none() {
                    start = Some(idx);
                }
            } else if let Some(s) = start.take() {
                self.push(&mut out, input, s, idx);
                if self.at_cap(&out) {
                    return out;
                }
            }
        }
        if let Some(s) = start {
            self.push(&mut out, input, s, input.len());
        }
        out
    }

    /// Normalize `input` (per config) and tokenize the normalized text.
    /// Returns the normalized string alongside the tokens; spans index into
    /// the returned string.
    pub fn tokenize_normalized(&self, input: &str) -> (String, Vec<Token>) {
        let norm = normalize(input, &self.cfg.normalize);
        let toks = self.tokenize(&norm);
        (norm, toks)
    }

    /// Tokenize and return only the token texts, normalized.
    pub fn terms(&self, input: &str) -> Vec<String> {
        self.tokenize_normalized(input)
            .1
            .into_iter()
            .map(|t| t.text)
            .collect()
    }

    fn push(&self, out: &mut Vec<Token>, input: &str, start: usize, end: usize) {
        out.push(Token {
            text: input[start..end].to_string(),
            start,
            end,
        });
    }

    fn at_cap(&self, out: &[Token]) -> bool {
        self.cfg.max_tokens != 0 && out.len() >= self.cfg.max_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tok(s: &str) -> Vec<String> {
        Tokenizer::default().terms(s)
    }

    #[test]
    fn basic_words() {
        assert_eq!(
            tok("Find cheap flights to New York."),
            ["find", "cheap", "flights", "to", "new", "york"]
        );
    }

    #[test]
    fn empty_and_whitespace() {
        assert!(tok("").is_empty());
        assert!(tok("   \t\n").is_empty());
        assert!(tok("...!!!").is_empty());
    }

    #[test]
    fn keeps_meaningful_symbols_inside_tokens() {
        assert_eq!(tok("20% off $99 don't"), ["20%", "off", "$99", "don't"]);
    }

    #[test]
    fn spans_are_correct_on_raw_input() {
        let t = Tokenizer::default();
        let input = "no reservation costs";
        let toks = t.tokenize(input);
        for tk in &toks {
            assert_eq!(&input[tk.start..tk.end], tk.text);
        }
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn spans_index_into_normalized_string() {
        let t = Tokenizer::default();
        let (norm, toks) = t.tokenize_normalized("  Great   RATES!  ");
        assert_eq!(norm, "great rates");
        assert_eq!(toks.len(), 2);
        for tk in &toks {
            assert_eq!(&norm[tk.start..tk.end], tk.text);
        }
    }

    #[test]
    fn unicode_words() {
        assert_eq!(tok("Zürich–Genève"), ["zürich", "genève"]);
    }

    #[test]
    fn token_cap_is_enforced() {
        let t = Tokenizer::new(TokenizerConfig {
            max_tokens: 2,
            ..Default::default()
        });
        assert_eq!(t.terms("a b c d e").len(), 2);
    }

    #[test]
    fn zero_cap_means_unlimited() {
        let t = Tokenizer::default();
        let many = "word ".repeat(500);
        assert_eq!(t.terms(&many).len(), 500);
    }

    #[test]
    fn tokens_are_nonempty_and_ordered() {
        let t = Tokenizer::default();
        let toks = t.tokenize("alpha  beta gamma");
        let mut prev_end = 0;
        for tk in toks {
            assert!(!tk.is_empty());
            assert!(tk.start >= prev_end);
            prev_end = tk.end;
        }
    }
}
