//! Property-based tests for the text substrate.

use microbrowse_text::{
    normalize, Interner, NGramConfig, NGramExtractor, NormalizeConfig, Snippet, Tokenizer,
};
use proptest::prelude::*;

proptest! {
    /// Normalization is idempotent for arbitrary input.
    #[test]
    fn normalize_idempotent(s in ".{0,200}") {
        let cfg = NormalizeConfig::default();
        let once = normalize(&s, &cfg);
        prop_assert_eq!(normalize(&once, &cfg), once);
    }

    /// Normalized output never contains uppercase ASCII or doubled spaces.
    #[test]
    fn normalize_output_shape(s in ".{0,200}") {
        let out = normalize(&s, &NormalizeConfig::default());
        prop_assert!(!out.contains("  "), "doubled space in {out:?}");
        prop_assert!(!out.starts_with(' ') && !out.ends_with(' '));
        prop_assert!(!out.chars().any(|c| c.is_ascii_uppercase()));
    }

    /// Token spans always slice the input to exactly the token text, are
    /// non-empty, and strictly advance.
    #[test]
    fn token_spans_valid(s in ".{0,300}") {
        let t = Tokenizer::default();
        let toks = t.tokenize(&s);
        let mut prev_end = 0usize;
        for tk in &toks {
            prop_assert!(tk.start < tk.end);
            prop_assert!(tk.start >= prev_end);
            prop_assert_eq!(&s[tk.start..tk.end], tk.text.as_str());
            prev_end = tk.end;
        }
    }

    /// Interning then resolving is the identity, for any batch of strings.
    #[test]
    fn interner_bijective(strings in prop::collection::vec(".{0,30}", 0..50)) {
        let mut interner = Interner::new();
        let syms: Vec<_> = strings.iter().map(|s| interner.intern(s)).collect();
        for (s, sym) in strings.iter().zip(&syms) {
            prop_assert_eq!(interner.resolve(*sym), s.as_str());
        }
        // Distinct strings get distinct symbols.
        let distinct: std::collections::HashSet<_> = strings.iter().collect();
        prop_assert_eq!(interner.len(), distinct.len());
    }

    /// N-gram occurrence counts follow the closed form per line:
    /// sum over n of max(0, len - n + 1).
    #[test]
    fn ngram_counts_match_closed_form(
        lines in prop::collection::vec("[a-z]{1,8}( [a-z]{1,8}){0,9}", 0..4),
        max_n in 1u8..4,
    ) {
        let mut interner = Interner::new();
        let tok = Snippet::from_lines(lines.clone()).tokenize(&Tokenizer::default(), &mut interner);
        let ex = NGramExtractor::new(NGramConfig { min_n: 1, max_n });
        let occs = ex.extract(&tok, &mut interner);
        let expected: usize = tok
            .lines
            .iter()
            .map(|l| (1..=max_n as usize).map(|n| if l.len() >= n { l.len() - n + 1 } else { 0 }).sum::<usize>())
            .sum();
        prop_assert_eq!(occs.len(), expected);
    }

    /// Every extracted n-gram phrase, resolved, has exactly `n` space-joined
    /// tokens drawn from its source line at the reported position.
    #[test]
    fn ngram_provenance(
        lines in prop::collection::vec("[a-z]{1,6}( [a-z]{1,6}){0,7}", 1..4),
    ) {
        let mut interner = Interner::new();
        let tok = Snippet::from_lines(lines).tokenize(&Tokenizer::default(), &mut interner);
        let occs = NGramExtractor::default().extract(&tok, &mut interner);
        for occ in occs {
            let line = &tok.lines[occ.line as usize];
            let n = occ.ngram.n as usize;
            let start = occ.pos as usize;
            let expect: Vec<&str> = line[start..start + n].iter().map(|s| interner.resolve(*s)).collect();
            prop_assert_eq!(interner.resolve(occ.ngram.phrase), expect.join(" "));
        }
    }
}
