//! Creative selection as an offline A/B shortcut.
//!
//! ```text
//! cargo run --release -p microbrowse-examples --example ab_test
//! ```
//!
//! An advertiser uploads several creatives per adgroup; the platform
//! normally burns impressions on an exploration phase to find the best one.
//! This example trains an M4 snippet classifier on *historical* adgroups
//! and uses it to pre-rank the creatives of *new* adgroups before a single
//! impression is served, then measures how often the predicted champion is
//! the true CTR champion versus random selection.

use microbrowse_core::classifier::{ModelSpec, TrainConfig, TrainedClassifier};
use microbrowse_core::features::Featurizer;
use microbrowse_core::statsbuild::{build_stats, StatsBuildConfig, TokenizedCorpus};
use microbrowse_core::PairFilter;
use microbrowse_synth::{generate, GeneratorConfig};

fn main() {
    // Historical traffic to learn from, and fresh adgroups to deploy on.
    // The fresh corpus is generated without idiosyncratic CTR noise: the
    // question "which creative *text* is best" has a well-defined answer
    // there, while landing-page/brand effects are unpredictable from text
    // by construction.
    let history = generate(&GeneratorConfig {
        num_adgroups: 800,
        seed: 21,
        ..Default::default()
    });
    let fresh = generate(&GeneratorConfig {
        num_adgroups: 300,
        seed: 22,
        ctr_noise: 0.0,
        ..Default::default()
    });

    // Phase 1 on history: statistics database.
    let tc = TokenizedCorpus::build(&history.corpus);
    let pairs = history.corpus.extract_pairs(&PairFilter::default());
    println!("learning from {} historical pairs…", pairs.len());
    let stats = build_stats(&tc, &pairs, &StatsBuildConfig::default());

    // Phase 2: train M4 (greedy rewrites with position information).
    let spec = ModelSpec::m4();
    let mut interner = tc.interner.clone();
    let mut featurizer = Featurizer::new(spec, &stats);
    let tok_pairs: Vec<_> = pairs
        .iter()
        .map(|p| (tc.snippet(p.r).clone(), tc.snippet(p.s).clone(), p.r_better))
        .collect();
    let train_data = featurizer.encode_batch(&tok_pairs, &mut interner);
    let cfg = TrainConfig::default();
    let mut init_terms =
        featurizer.init_term_weights(&interner, cfg.stats_alpha, cfg.init_min_support);
    for w in &mut init_terms {
        *w *= cfg.init_scale;
    }
    let init_pos = featurizer.init_pos_weights(cfg.stats_alpha);
    let clf = TrainedClassifier::train(&spec, &train_data, Some(init_terms), Some(init_pos), &cfg);

    // Deploy: for each fresh adgroup, pick the champion by round-robin
    // pairwise prediction; compare with the true-CTR champion.
    let fresh_tc = TokenizedCorpus::build(&fresh.corpus);
    let tokenizer_interner = &mut interner; // keep one symbol space
    let mut model_hits = 0usize;
    let mut eligible = 0usize;
    for group in &fresh.corpus.adgroups {
        if group.creatives.len() < 2 {
            continue;
        }
        // True champion by observed CTR.
        let true_best = group
            .creatives
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.ctr().partial_cmp(&b.1.ctr()).expect("ctr finite"))
            .map(|(i, _)| i)
            .expect("non-empty");

        // Model champion: win counts over all ordered pairs.
        let mut wins = vec![0usize; group.creatives.len()];
        for (i, win_count) in wins.iter_mut().enumerate() {
            for (j, other) in group.creatives.iter().enumerate() {
                if i == j {
                    continue;
                }
                let r = fresh_tc.snippet(group.creatives[i].id).clone();
                let s = fresh_tc.snippet(other.id).clone();
                let ex = featurizer.encode_coupled(&r, &s, true, tokenizer_interner);
                if clf.predict_coupled(&ex) {
                    *win_count += 1;
                }
            }
        }
        let model_best = wins
            .iter()
            .enumerate()
            .max_by_key(|(_, &w)| w)
            .map(|(i, _)| i)
            .expect("non-empty");

        eligible += 1;
        if model_best == true_best {
            model_hits += 1;
        }
    }
    let random_rate: f64 = fresh
        .corpus
        .adgroups
        .iter()
        .filter(|g| g.creatives.len() >= 2)
        .map(|g| 1.0 / g.creatives.len() as f64)
        .sum::<f64>()
        / eligible as f64;

    println!("\n== champion prediction on {eligible} unseen adgroups ==\n");
    println!(
        "  model picks the true champion: {:.1}%",
        100.0 * model_hits as f64 / eligible as f64
    );
    println!(
        "  random selection would get:    {:.1}%",
        100.0 * random_rate
    );
    println!("\nevery percentage point above random is exploration traffic the");
    println!("advertiser does not have to spend on a losing creative.");
}
