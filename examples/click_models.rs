//! Tour of the macro click-model zoo (§II of the paper).
//!
//! ```text
//! cargo run --release -p microbrowse-examples --example click_models
//! ```
//!
//! Simulates SERP sessions with a DBN-style ground truth, fits every model
//! the paper surveys, and prints (a) held-out perplexity, (b) each model's
//! CTR-by-rank prediction against the empirical curve, and (c) the DBN's
//! recovered perseverance parameter.

use microbrowse_click::{
    evaluate, CascadeModel, CcmModel, ClickModel, DbnModel, DcmModel, DocId, PositionModel,
    QueryId, UbmModel,
};
use microbrowse_synth::sessions::{generate_sessions, SessionConfig};

fn main() {
    let cfg = SessionConfig {
        num_sessions: 40_000,
        seed: 5,
        ..SessionConfig::default()
    };
    let (all, truth) = generate_sessions(&cfg);
    let (train, test) = all.split_every_kth(5);
    println!(
        "simulated {} sessions ({} train / {} test), ground-truth γ = {}\n",
        all.len(),
        train.len(),
        test.len(),
        truth.gamma
    );

    let empirical = test.ctr_by_rank();
    println!("empirical CTR by rank: {}", fmt_row(&empirical));

    let mut models: Vec<Box<dyn ClickModel>> = vec![
        Box::new(PositionModel::default()),
        Box::new(CascadeModel::default()),
        Box::new(DcmModel::default()),
        Box::new(UbmModel::default()),
        Box::new(CcmModel::default()),
        Box::new(DbnModel::default()),
    ];

    println!(
        "\n{:8}  {:>10}  {:>8}  predicted CTR by rank",
        "model", "perplexity", "LL/pos"
    );
    for model in &mut models {
        model.fit(&train);
        let report = evaluate(model.as_ref(), &test);
        // Predict the marginal CTR curve for a canonical SERP of query 0.
        let docs: Vec<DocId> = (0..cfg.serp_depth as u32).map(DocId).collect();
        let predicted = model.full_click_probs(QueryId(0), &docs);
        println!(
            "{:8}  {:>10.4}  {:>8.4}  {}",
            report.model,
            report.perplexity,
            report.mean_position_ll,
            fmt_row(&predicted)
        );
    }

    // The DBN should recover the generator's perseverance.
    let mut dbn = DbnModel::default();
    dbn.fit(&train);
    println!(
        "\nDBN recovered perseverance γ = {:.3} (truth {:.3})",
        dbn.gamma, truth.gamma
    );
    println!("lower perplexity = better; 2.0 would be a fair coin at every rank.");
}

fn fmt_row(xs: &[f64]) -> String {
    xs.iter()
        .map(|x| format!("{x:.3}"))
        .collect::<Vec<_>>()
        .join(" ")
}
