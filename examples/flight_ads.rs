//! The paper's motivating scenario (§I): a flight advertiser wonders which
//! creative will earn more clicks — and *where in the snippet* the decisive
//! words should go.
//!
//! ```text
//! cargo run --release -p microbrowse-examples --example flight_ads
//! ```
//!
//! Uses the ground-truth micro-browsing user from `microbrowse-synth` to
//! show how CTR responds to (a) which phrases a creative uses and (b) where
//! they sit, then runs the full pipeline on a synthetic flights-heavy corpus
//! and reports how well each classifier variant predicts the winner.

use microbrowse_core::pipeline::{run_experiment, ExperimentConfig};
use microbrowse_core::{ModelSpec, Placement};
use microbrowse_synth::{generate, AttentionProfile, GeneratorConfig, MicroUser};
use microbrowse_text::Snippet;

fn main() {
    // ------------------------------------------------------------------
    // 1. One user, several creatives: phrase choice and phrase placement.
    // ------------------------------------------------------------------
    let salience = [
        ("more legroom", 0.85),
        ("save 20%", 1.30),
        ("find cheap", 0.55),
        ("fees may apply", -1.10),
    ]
    .into_iter()
    .map(|(t, s)| (t.to_string(), s))
    .collect();
    let user = MicroUser {
        attention: AttentionProfile::top(),
        salience,
        base_logit: -3.0,
    };

    println!("== expected CTR under the micro-browsing user ==\n");
    let creatives = [
        (
            "offer up front",
            Snippet::creative(
                "XYZ Airlines",
                "save 20% on flights to new york",
                "book today",
            ),
        ),
        (
            "offer buried in line 3",
            Snippet::creative(
                "XYZ Airlines",
                "flights to new york",
                "book today and save 20%",
            ),
        ),
        (
            "comfort angle",
            Snippet::creative("XYZ Airlines", "more legroom on every flight", "book today"),
        ),
        (
            "fine print up top",
            Snippet::creative(
                "XYZ Airlines",
                "fees may apply on some routes",
                "find cheap flights",
            ),
        ),
    ];
    for (label, snippet) in &creatives {
        println!("  {:24} ctr = {:.4}", label, user.expected_ctr(snippet));
    }
    println!("\nthe SAME offer moves from line 1 to line 3 and loses most of its pull —");
    println!("that placement effect is exactly what the micro-browsing model captures.\n");

    // ------------------------------------------------------------------
    // 2. Can a classifier learn this from CTR logs alone?
    // ------------------------------------------------------------------
    println!("== training snippet classifiers on a synthetic ad corpus ==\n");
    let synth = generate(&GeneratorConfig {
        num_adgroups: 400,
        placement: Placement::Top,
        seed: 11,
        ..Default::default()
    });
    println!(
        "corpus: {} adgroups, {} creatives",
        synth.corpus.num_adgroups(),
        synth.corpus.num_creatives()
    );
    let cfg = ExperimentConfig {
        folds: 5,
        ..Default::default()
    };
    for spec in [ModelSpec::m1(), ModelSpec::m4(), ModelSpec::m6()] {
        let out = run_experiment(&synth.corpus, spec, &cfg);
        println!(
            "  {:32} accuracy {:.3}  F {:.3}  ({} pairs)",
            out.spec.label(),
            out.mean.accuracy,
            out.mean.f1,
            out.num_pairs
        );
    }
    println!(
        "\nposition-aware rewrites (M4/M6) recover more of the signal than bag-of-terms (M1)."
    );
}
