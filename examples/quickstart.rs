//! Quickstart: the micro-browsing model in five minutes.
//!
//! ```text
//! cargo run --release -p microbrowse-examples --example quickstart
//! ```
//!
//! Walks through the paper's core equations on the paper's own example pair
//! ("Find cheap flights to New York." vs "Flying to New York? Get
//! discounts."), then shows the rewrite extractor recovering the phrase
//! alignment and a snippet classifier scoring the pair.

use microbrowse_core::model::{score_flat, snippet_relevance, TermJudgment};
use microbrowse_core::rewrite::{canonical_rewrite_key, RewriteExtractor};
use microbrowse_store::StatsDb;
use microbrowse_text::{Interner, Snippet, Tokenizer};

fn main() {
    // ------------------------------------------------------------------
    // 1. Eq. 3: a snippet's perceived relevance depends only on the terms
    //    the user actually examined.
    // ------------------------------------------------------------------
    println!("== Eq. 3: perceived relevance under partial examination ==\n");
    let t = TermJudgment::new;
    // "more legroom" read at the start of the line…
    let legroom_read = [t(0.95, true), t(0.5, true), t(0.4, false), t(0.4, false)];
    // …versus buried at the end where the user never looks.
    let legroom_buried = [t(0.4, true), t(0.4, true), t(0.5, false), t(0.95, false)];
    println!(
        "salient phrase read:    Pr(R|q) = {:.3}",
        snippet_relevance(&legroom_read)
    );
    println!(
        "salient phrase buried:  Pr(R|q) = {:.3}",
        snippet_relevance(&legroom_buried)
    );
    println!(
        "same words, different positions → log-odds gap {:+.3}\n",
        score_flat(&legroom_read, &legroom_buried)
    );

    // ------------------------------------------------------------------
    // 2. The paper's §IV-A example pair, diffed and greedily matched.
    // ------------------------------------------------------------------
    println!("== §IV-A: rewrite extraction on the paper's example ==\n");
    let snippet_r = Snippet::creative(
        "XYZ Airlines",
        "Find cheap flights to New York.",
        "No reservation costs. Great rates",
    );
    let snippet_s = Snippet::creative(
        "XYZ Airlines",
        "Flying to New York? Get discounts.",
        "No reservation costs. Great rates!",
    );
    println!("Snippet R:\n{snippet_r}\n");
    println!("Snippet S:\n{snippet_s}\n");

    let tokenizer = Tokenizer::default();
    let mut interner = Interner::new();
    let tok_r = snippet_r.tokenize(&tokenizer, &mut interner);
    let tok_s = snippet_s.tokenize(&tokenizer, &mut interner);

    // A rewrite statistics database seeded with corpus-level evidence (in
    // the full pipeline this comes from millions of pairs; here we plant
    // the two entries the paper discusses).
    let mut stats = StatsDb::new();
    for _ in 0..40 {
        stats.record(canonical_rewrite_key("find cheap", "get discounts"), true);
    }
    for _ in 0..25 {
        stats.record(canonical_rewrite_key("flights", "flying"), true);
    }

    let extraction = RewriteExtractor::default().extract(&tok_r, &tok_s, &stats, &mut interner);
    println!("greedy rewrite matching found:");
    for rw in &extraction.rewrites {
        println!(
            "  '{}' (line {}, pos {})  →  '{}' (line {}, pos {})",
            interner.resolve(rw.from.phrase),
            rw.from.pos.line + 1,
            rw.from.pos.pos + 1,
            interner.resolve(rw.to.phrase),
            rw.to.pos.line + 1,
            rw.to.pos.pos + 1,
        );
    }
    for occ in &extraction.r_leftover {
        println!("  leftover in R: '{}'", interner.resolve(occ.phrase));
    }
    for occ in &extraction.s_leftover {
        println!("  leftover in S: '{}'", interner.resolve(occ.phrase));
    }

    // ------------------------------------------------------------------
    // 3. Scoring the pair with stats-DB log-odds (the "+init" classifier
    //    before any gradient step).
    // ------------------------------------------------------------------
    println!("\n== scoring R vs S from rewrite statistics alone ==\n");
    let mut score = 0.0;
    for rw in &extraction.rewrites {
        let from = interner.resolve(rw.from.phrase);
        let to = interner.resolve(rw.to.phrase);
        let key = canonical_rewrite_key(from, to);
        let log_odds = stats.log_odds(&key, 1.0);
        // Canonical direction: positive log-odds favor the lexicographically
        // smaller phrase's side.
        let oriented = if from <= to { log_odds } else { -log_odds };
        println!("  rewrite '{from}' → '{to}': oriented log-odds {oriented:+.3}");
        score += oriented;
    }
    println!("\ntotal score(R→S|q) = {score:+.3}");
    println!(
        "⇒ the corpus evidence says {} has the higher expected CTR",
        if score > 0.0 { "R" } else { "S" }
    );
}
