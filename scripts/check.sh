#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --workspace --all-targets"
cargo build --workspace --all-targets

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "OK: build, tests, clippy, fmt all green"
