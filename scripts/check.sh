#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green.
# Usage: scripts/check.sh   (from anywhere inside the repo)
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --locked --workspace --all-targets"
cargo build --locked --workspace --all-targets

echo "==> cargo test --workspace"
cargo test --workspace --quiet

echo "==> fault-injection suite (resilience contract)"
cargo test --quiet -p microbrowse-faultinject
cargo test --quiet -p microbrowse-store --test corrupt
cargo test --quiet -p microbrowse-core --test artifact_errors

echo "==> no unwrap/expect on artifact load/serve paths (incl. obs + api + server + faultinject)"
if grep -rn 'unwrap()\|expect(' crates/store/src crates/core/src/serve.rs \
    crates/core/src/error.rs crates/obs/src crates/cli/src crates/server/src \
    crates/api/src crates/faultinject/src crates/online/src \
    crates/core/src/compiled.rs crates/core/src/paircache.rs \
    crates/core/src/features.rs crates/core/src/rewrite.rs \
    crates/core/src/suggest.rs crates/core/src/explain.rs \
    | python3 -c '
import sys, re
bad = []
files = {}
for line in sys.stdin:
    path, lineno, _ = line.split(":", 2)
    if path not in files:
        files[path] = open(path).read().splitlines()
    src = files[path]
    # Allowed only below the #[cfg(test)] marker of the file s test module.
    marker = next((i for i, l in enumerate(src) if "#[cfg(test)]" in l), len(src))
    if int(lineno) - 1 < marker:
        bad.append(line.rstrip())
print("\n".join(bad))
sys.exit(1 if bad else 0)
'; then
    :
else
    echo "ERROR: unwrap()/expect( found outside test code on a load/serve path" >&2
    exit 1
fi

echo "==> disabled-instrumentation overhead gate (< 2% of pipeline wall time)"
cargo build --locked --release -q -p microbrowse-bench --bin obs_overhead
./target/release/obs_overhead --adgroups 100

echo "==> trace-schema gate (--trace-json output validates via the strict obs::json reader)"
cargo build --locked --release -q -p microbrowse-cli --bin microbrowse
cargo build --locked --release -q -p microbrowse-bench --bin trace_schema
./target/release/microbrowse experiment --spec m1 --adgroups 12 --folds 2 \
    --trace-json /tmp/trace_schema.check.jsonl >/dev/null
./target/release/trace_schema --file /tmp/trace_schema.check.jsonl --require-traced 1

echo "==> flight-recorder overhead gate (< 2% of traced serving wall time, recorder on)"
cargo build --locked --release -q -p microbrowse-bench --bin flight_overhead
./target/release/flight_overhead --requests 2000

echo "==> hot-path scoring engine gate (>= 4x legacy throughput, bit-identical)"
cargo build --locked --release -q -p microbrowse-bench --bin bench_score_hot
./target/release/bench_score_hot --adgroups 120 --reps 10 --gate 4.0 \
    --out /tmp/BENCH_score_hot.check.json

echo "==> server smoke gate (serve + hot reload under load + graceful drain)"
cargo build --locked --release -q -p microbrowse-cli --bin microbrowse \
    -p microbrowse-server --bin serve_smoke
./target/release/serve_smoke --bin ./target/release/microbrowse

echo "==> online-learning drift gate (post-drift online margin >= 0.10 over frozen model)"
cargo build --locked --release -q -p microbrowse-bench --bin bench_online
./target/release/bench_online --train-adgroups 160 --adgroups 80 --windows 4 \
    --drift-at 3 --seed 42 --gate 0.10 --out /tmp/BENCH_online.check.json >/dev/null

echo "==> suggestion beam gate (beam finds improving rewrites; top-1 beats input; deterministic)"
cargo build --locked --release -q -p microbrowse-bench --bin bench_suggest
./target/release/bench_suggest --adgroups 80 --creatives 48 --reps 2 --seed 42 \
    --gate 0.5 --out /tmp/BENCH_suggest.check.json >/dev/null

echo "==> live-socket chaos gate (shed under overload, no stranded workers, full recovery)"
cargo build --locked --release -q -p microbrowse-bench --bin chaos_serve
./target/release/chaos_serve --seed 42 --out /tmp/BENCH_chaos.check.json

echo "==> wire-API docs complete and warning-free"
RUSTDOCFLAGS="-D warnings" cargo doc --locked --no-deps -q -p microbrowse-api

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "OK: build, tests, fault injection, unwrap audit, overhead gate, trace schema, flight recorder, hot-path gate, server smoke, online drift gate, suggest gate, chaos gate, api docs, clippy, fmt all green"
