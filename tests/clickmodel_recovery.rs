//! The click-model zoo against the session simulator: parameter recovery
//! and the expected model ordering under a DBN-style ground truth.

use microbrowse_click::{
    evaluate, CascadeModel, CcmModel, ClickModel, DbnModel, DcmModel, PositionModel, UbmModel,
};
use microbrowse_synth::sessions::{generate_sessions, SessionConfig};

fn data() -> (
    microbrowse_click::SessionSet,
    microbrowse_click::SessionSet,
    f64,
) {
    let cfg = SessionConfig {
        num_sessions: 30_000,
        seed: 301,
        ..SessionConfig::default()
    };
    let (all, truth) = generate_sessions(&cfg);
    let (train, test) = all.split_every_kth(5);
    (train, test, truth.gamma)
}

#[test]
fn dbn_recovers_its_own_gamma() {
    let (train, _, gamma) = data();
    let mut dbn = DbnModel::default();
    dbn.fit(&train);
    assert!(
        (dbn.gamma - gamma).abs() < 0.1,
        "recovered γ {:.3} vs truth {:.3}",
        dbn.gamma,
        gamma
    );
}

#[test]
fn model_ordering_matches_ground_truth_family() {
    let (train, test, _) = data();
    let mut models: Vec<Box<dyn ClickModel>> = vec![
        Box::new(PositionModel::default()),
        Box::new(CascadeModel::default()),
        Box::new(DcmModel::default()),
        Box::new(UbmModel::default()),
        Box::new(CcmModel::default()),
        Box::new(DbnModel::default()),
    ];
    let mut perp = std::collections::HashMap::new();
    for m in &mut models {
        m.fit(&train);
        let r = evaluate(m.as_ref(), &test);
        assert!(r.perplexity.is_finite());
        // The strict cascade is the exception: it assigns ~zero probability
        // to any click after the first, so multi-click sessions push its
        // perplexity past the coin-flip 2.0 — exactly why DCM generalized it.
        if r.model != "Cascade" {
            assert!(
                r.perplexity < 2.0,
                "{} worse than a coin: {}",
                r.model,
                r.perplexity
            );
        }
        perp.insert(r.model.clone(), r.perplexity);
    }
    // DBN generated the data; it must fit at least as well as every other
    // model (small tolerance for EM stochastic-free but finite-sample fits).
    let dbn = perp["DBN"];
    for (name, p) in &perp {
        assert!(
            dbn <= p + 0.01,
            "DBN ({dbn:.4}) should be best; {name} has {p:.4}"
        );
    }
    // The strict cascade cannot express multi-click sessions and pays.
    assert!(perp["Cascade"] > dbn);
}

#[test]
fn fitting_on_train_improves_test_likelihood() {
    let (train, test, _) = data();
    for mut model in [
        Box::new(PositionModel::default()) as Box<dyn ClickModel>,
        Box::new(UbmModel::default()),
        Box::new(DbnModel::default()),
    ] {
        let before: f64 = test
            .sessions()
            .iter()
            .map(|s| model.log_likelihood(s))
            .sum();
        model.fit(&train);
        let after: f64 = test
            .sessions()
            .iter()
            .map(|s| model.log_likelihood(s))
            .sum();
        assert!(
            after > before,
            "{}: fitting should increase held-out LL ({before:.1} → {after:.1})",
            model.name()
        );
    }
}

#[test]
fn predicted_ctr_curves_match_empirical_position_bias() {
    let (train, test, _) = data();
    let mut dbn = DbnModel::default();
    dbn.fit(&train);
    let empirical = test.ctr_by_rank();
    // Average the model's per-session conditional at rank 0 is just its
    // marginal at rank 0; spot-check the top-rank CTR level.
    let docs: Vec<microbrowse_click::DocId> = (0..10u32).map(microbrowse_click::DocId).collect();
    let predicted = dbn.full_click_probs(microbrowse_click::QueryId(0), &docs);
    // Both decay with rank.
    assert!(empirical[0] > empirical[5]);
    assert!(predicted[0] > predicted[5]);
}
