//! Persistence fidelity of the full pipeline: a classifier trained on one
//! corpus, saved to disk, and reloaded in a "fresh process" (new interner,
//! new featurizer) must reproduce its predictions exactly.

use microbrowse_core::classifier::{ModelSpec, TrainConfig, TrainedClassifier};
use microbrowse_core::features::Featurizer;
use microbrowse_core::serve::{DeployedModel, Scorer};
use microbrowse_core::statsbuild::{build_stats, StatsBuildConfig, TokenizedCorpus};
use microbrowse_core::PairFilter;
use microbrowse_store::{read_snapshot, write_snapshot};
use microbrowse_synth::{generate, GeneratorConfig};

fn train_deployed(spec: ModelSpec, seed: u64) -> (DeployedModel, microbrowse_store::StatsDb) {
    let synth = generate(&GeneratorConfig {
        num_adgroups: 250,
        seed,
        ..Default::default()
    });
    let tc = TokenizedCorpus::build(&synth.corpus);
    let pairs = synth.corpus.extract_pairs(&PairFilter::default());
    let stats = build_stats(&tc, &pairs, &StatsBuildConfig::default());

    let cfg = TrainConfig::default();
    let mut interner = tc.interner.clone();
    let mut fz = Featurizer::new(spec, &stats);
    let tok_pairs: Vec<_> = pairs
        .iter()
        .map(|p| (tc.snippet(p.r).clone(), tc.snippet(p.s).clone(), p.r_better))
        .collect();
    let data = fz.encode_batch(&tok_pairs, &mut interner);
    let init_terms = fz.init_term_weights(&interner, cfg.stats_alpha, cfg.init_min_support);
    let init_pos = fz.init_pos_weights(cfg.stats_alpha);
    let classifier = TrainedClassifier::train(&spec, &data, Some(init_terms), Some(init_pos), &cfg);
    let vocab = fz.export_vocab(&interner);
    (
        DeployedModel {
            spec,
            classifier,
            vocab,
        },
        stats,
    )
}

fn probe_snippets() -> Vec<microbrowse_text::Snippet> {
    use microbrowse_text::Snippet;
    vec![
        Snippet::creative(
            "skyhop travel",
            "today save 20% for travelers flights to tokyo",
            "no reservation costs today more legroom",
        ),
        Snippet::creative(
            "skyhop travel",
            "today check availability for travelers flights to tokyo",
            "fees may apply today more legroom",
        ),
        Snippet::creative(
            "roomfinder",
            "tonight save big for families luxury hotels",
            "free breakfast tonight free cancellation",
        ),
        Snippet::creative(
            "roomfinder",
            "tonight see listings for families budget hotels",
            "paid parking tonight non refundable rates",
        ),
        Snippet::creative(
            "stride store",
            "save 30% today on running shoes",
            "free shipping today free returns",
        ),
    ]
}

fn roundtrip_predictions_agree(spec: ModelSpec) {
    let (model, stats) = train_deployed(spec, 777);

    // Round-trip both artifacts through real files.
    let dir =
        std::env::temp_dir().join(format!("mb-roundtrip-{}-{}", std::process::id(), spec.name));
    std::fs::create_dir_all(&dir).unwrap();
    let model_path = dir.join("model.mbm");
    let stats_path = dir.join("stats.mbs");
    model.save(&model_path).expect("save model");
    write_snapshot(&stats, &stats_path).expect("save stats");

    let model2 = DeployedModel::load(&model_path).expect("load model");
    let stats2 = read_snapshot(&stats_path).expect("load stats");
    assert_eq!(
        model, model2,
        "model must survive the disk round trip bit-exactly"
    );

    let live = Scorer::new(&model, &stats);
    let reloaded = Scorer::new(&model2, &stats2);
    let mut live_scratch = live.scratch();
    let mut reloaded_scratch = reloaded.scratch();
    let probes = probe_snippets();
    for (i, r) in probes.iter().enumerate() {
        for (j, s) in probes.iter().enumerate() {
            if i == j {
                continue;
            }
            let a = live.score_pair(r, s, &mut live_scratch);
            let b = reloaded.score_pair(r, s, &mut reloaded_scratch);
            assert!(
                (a - b).abs() < 1e-12,
                "{}: scores diverge after reload ({a} vs {b}) for pair {i},{j}",
                spec.name
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn flat_model_survives_persistence() {
    roundtrip_predictions_agree(ModelSpec::m5());
}

#[test]
fn coupled_model_survives_persistence() {
    roundtrip_predictions_agree(ModelSpec::m4());
}

#[test]
fn deployed_model_transfers_to_unseen_corpus() {
    // The real adoption test: train on one synthetic market, score creatives
    // from a completely different draw, still beat chance clearly.
    let (model, stats) = train_deployed(ModelSpec::m4(), 778);
    let fresh = generate(&GeneratorConfig {
        num_adgroups: 150,
        seed: 999,
        ..Default::default()
    });
    let tc = TokenizedCorpus::build(&fresh.corpus);
    let pairs = fresh.corpus.extract_pairs(&PairFilter::default());
    let scorer = Scorer::new(&model, &stats);
    let mut scratch = scorer.scratch();
    let mut correct = 0;
    for p in &pairs {
        let r = tc.snippet(p.r).render(&tc.interner);
        let s = tc.snippet(p.s).render(&tc.interner);
        if scorer.predict_pair(&r, &s, &mut scratch) == p.r_better {
            correct += 1;
        }
    }
    let acc = correct as f64 / pairs.len().max(1) as f64;
    assert!(
        acc > 0.58,
        "transfer accuracy {acc:.3} on {} pairs",
        pairs.len()
    );
}
