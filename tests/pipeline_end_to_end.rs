//! End-to-end pipeline integration: synthetic corpus → statistics build →
//! featurization → training → cross-validated evaluation, across crates.

use microbrowse_core::pipeline::{run_experiment, ExperimentConfig};
use microbrowse_core::{ModelSpec, PairFilter, Placement};
use microbrowse_synth::{generate, GeneratorConfig};

fn small_corpus(seed: u64) -> microbrowse_core::AdCorpus {
    generate(&GeneratorConfig {
        num_adgroups: 250,
        placement: Placement::Top,
        seed,
        ..Default::default()
    })
    .corpus
}

fn quick_cfg() -> ExperimentConfig {
    ExperimentConfig {
        folds: 4,
        ..Default::default()
    }
}

#[test]
fn every_model_variant_beats_chance() {
    let corpus = small_corpus(101);
    let cfg = quick_cfg();
    for spec in ModelSpec::paper_models() {
        let out = run_experiment(&corpus, spec, &cfg);
        assert!(
            out.mean.accuracy > 0.55,
            "{} accuracy {:.3} barely above chance",
            spec.name,
            out.mean.accuracy
        );
        assert!(out.num_pairs > 100, "too few pairs: {}", out.num_pairs);
        // Metrics are internally consistent.
        assert!(out.mean.f1 <= 1.0 && out.mean.f1 >= 0.0);
        assert_eq!(out.fold_metrics.len(), cfg.folds);
    }
}

#[test]
fn pipeline_is_deterministic() {
    let corpus = small_corpus(102);
    let cfg = quick_cfg();
    let a = run_experiment(&corpus, ModelSpec::m4(), &cfg);
    let b = run_experiment(&corpus, ModelSpec::m4(), &cfg);
    assert_eq!(a.pooled, b.pooled);
    assert_eq!(a.position_weights, b.position_weights);
}

#[test]
fn position_aware_rewrites_beat_flat_rewrites() {
    // The headline reproduction claim (M4 > M3). On a general corpus the
    // gap is ~3 points but within per-seed noise at test-sized corpora (the
    // table2 binary verifies it on replicate means); here we isolate the
    // position channel — restructure-only variants, no idiosyncratic noise
    // — where the gap is large and deterministic.
    let corpus = generate(&GeneratorConfig {
        num_adgroups: 500,
        placement: Placement::Top,
        seed: 103,
        template_switch_prob: 1.0,
        rewrites_per_variant: (0, 0),
        ctr_noise: 0.0,
        ..Default::default()
    })
    .corpus;
    let cfg = ExperimentConfig {
        folds: 5,
        ..Default::default()
    };
    let m3 = run_experiment(&corpus, ModelSpec::m3(), &cfg);
    let m4 = run_experiment(&corpus, ModelSpec::m4(), &cfg);
    assert!(
        m4.mean.f1 > m3.mean.f1 + 0.02,
        "M4 ({:.3}) should clearly beat M3 ({:.3}) on position-only pairs",
        m4.mean.f1,
        m3.mean.f1
    );
}

#[test]
fn coupled_models_expose_position_weights_and_flat_models_do_not() {
    let corpus = small_corpus(104);
    let cfg = quick_cfg();
    let flat = run_experiment(&corpus, ModelSpec::m5(), &cfg);
    assert!(flat.position_weights.is_none());
    let coupled = run_experiment(&corpus, ModelSpec::m6(), &cfg);
    let weights = coupled
        .position_weights
        .expect("M6 reports position weights");
    assert!(weights.iter().all(|w| w.is_finite() && *w >= 0.0));
}

#[test]
fn pair_filter_controls_dataset_size() {
    let corpus = small_corpus(105);
    let loose = corpus.extract_pairs(&PairFilter {
        min_impressions: 100,
        min_zscore: 1.0,
    });
    let strict = corpus.extract_pairs(&PairFilter {
        min_impressions: 100,
        min_zscore: 4.0,
    });
    assert!(
        loose.len() > strict.len(),
        "{} vs {}",
        loose.len(),
        strict.len()
    );
    assert!(!strict.is_empty());
}

#[test]
fn placement_slices_run_independently() {
    let top = generate(&GeneratorConfig {
        num_adgroups: 200,
        placement: Placement::Top,
        seed: 106,
        ..Default::default()
    });
    let rhs = generate(&GeneratorConfig {
        num_adgroups: 200,
        placement: Placement::Rhs,
        seed: 106,
        ..Default::default()
    });
    let cfg = quick_cfg();
    let t = run_experiment(&top.corpus, ModelSpec::m4(), &cfg);
    let r = run_experiment(&rhs.corpus, ModelSpec::m4(), &cfg);
    assert!(t.mean.accuracy > 0.5 && r.mean.accuracy > 0.5);
}
