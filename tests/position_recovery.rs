//! The coupled classifier recovers the ground-truth attention structure
//! (the Figure 3 claim) from CTR data alone.

use microbrowse_core::features::PositionVocab;
use microbrowse_core::pipeline::{run_experiment, ExperimentConfig};
use microbrowse_core::{ModelSpec, Placement};
use microbrowse_store::key::SnippetPos;
use microbrowse_synth::{generate, GeneratorConfig};

fn position_weights(seed: u64) -> Vec<f64> {
    let synth = generate(&GeneratorConfig {
        num_adgroups: 800,
        placement: Placement::Top,
        seed,
        ..Default::default()
    });
    let cfg = ExperimentConfig {
        folds: 3,
        ..Default::default()
    };
    let out = run_experiment(&synth.corpus, ModelSpec::m6(), &cfg);
    out.position_weights.expect("M6 reports position weights")
}

fn avg(weights: &[f64], line: u8, positions: std::ops::Range<u16>) -> f64 {
    let mut acc = 0.0;
    let mut n = 0.0;
    for pos in positions {
        let g = PositionVocab::term_group(SnippetPos::new(line, pos));
        acc += weights[g as usize];
        n += 1.0;
    }
    acc / n
}

#[test]
fn within_line_attention_decay_is_recovered() {
    let weights = position_weights(401);
    // Ground truth: examination decays with in-line position. The learned
    // position weights for the data-rich lines must reflect that.
    for line in [1u8, 2] {
        let early = avg(&weights, line, 0..3);
        let late = avg(&weights, line, 6..9);
        assert!(
            early > late,
            "line {}: early {:.3} should exceed late {:.3}",
            line + 1,
            early,
            late
        );
    }
}

#[test]
fn position_weights_are_nonnegative_and_normalized() {
    let weights = position_weights(402);
    assert!(
        weights.iter().all(|&w| w >= 0.0),
        "nonnegativity constraint violated"
    );
    let mean_abs: f64 = weights.iter().map(|w| w.abs()).sum::<f64>() / weights.len() as f64;
    assert!(
        (mean_abs - 1.0).abs() < 1e-6,
        "scale gauge broken: mean abs {mean_abs}"
    );
}
