//! The feature statistics database survives a disk round-trip and drives
//! identical downstream behaviour afterwards.

use microbrowse_core::classifier::ModelSpec;
use microbrowse_core::features::Featurizer;
use microbrowse_core::statsbuild::{build_stats, StatsBuildConfig, TokenizedCorpus};
use microbrowse_core::PairFilter;
use microbrowse_store::{read_snapshot, write_snapshot};
use microbrowse_synth::{generate, GeneratorConfig};

#[test]
fn stats_db_round_trips_through_a_snapshot_file() {
    let synth = generate(&GeneratorConfig {
        num_adgroups: 120,
        seed: 201,
        ..Default::default()
    });
    let tc = TokenizedCorpus::build(&synth.corpus);
    let pairs = synth.corpus.extract_pairs(&PairFilter::default());
    let db = build_stats(&tc, &pairs, &StatsBuildConfig::default());
    assert!(db.len() > 100, "stats db suspiciously small: {}", db.len());

    let dir = std::env::temp_dir().join(format!("microbrowse-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let path = dir.join("adcorpus.mbstats");

    write_snapshot(&db, &path).expect("write snapshot");
    let reloaded = read_snapshot(&path).expect("read snapshot");
    assert_eq!(db.sorted_records(), reloaded.sorted_records());

    // The reloaded database drives identical featurization + initialization.
    let spec = ModelSpec::m6();
    let tok_pairs: Vec<_> = pairs
        .iter()
        .take(50)
        .map(|p| (tc.snippet(p.r).clone(), tc.snippet(p.s).clone(), p.r_better))
        .collect();

    let mut interner_a = tc.interner.clone();
    let mut fz_a = Featurizer::new(spec, &db);
    let _ = fz_a.encode_batch(&tok_pairs, &mut interner_a);
    let init_a = fz_a.init_term_weights(&interner_a, 1.0, 2);

    let mut interner_b = tc.interner.clone();
    let mut fz_b = Featurizer::new(spec, &reloaded);
    let _ = fz_b.encode_batch(&tok_pairs, &mut interner_b);
    let init_b = fz_b.init_term_weights(&interner_b, 1.0, 2);

    assert_eq!(init_a, init_b);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_detects_tampering() {
    let synth = generate(&GeneratorConfig {
        num_adgroups: 30,
        seed: 202,
        ..Default::default()
    });
    let tc = TokenizedCorpus::build(&synth.corpus);
    let pairs = synth.corpus.extract_pairs(&PairFilter::default());
    let db = build_stats(&tc, &pairs, &StatsBuildConfig::default());

    let mut bytes = microbrowse_store::file::to_bytes(&db);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    assert!(
        microbrowse_store::file::from_bytes(&bytes).is_err(),
        "tampered snapshot must not load"
    );
}
